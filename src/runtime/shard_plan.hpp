// ShardPlan — deterministic partitioning of a fleet into participant shards.
//
// A city-scale fleet matrix (participants x slots) decomposes by rows:
// every participant's readings live in one row, DETECT is row-local, and
// the low-rank CORRECT model holds within any participant subset large
// enough to span the shared mobility structure. A shard is a set of rows —
// contiguous [begin, end) for the row planners, an explicit sorted member
// list for the geographic planner — and a plan is a disjoint cover of
// [0, rows).
//
// Shard boundaries are part of the numerics contract: two runs of the same
// plan produce bit-identical results at any thread count, but two
// *different* plans are different block decompositions and legitimately
// differ in the reconstruction. Plans depend only on (rows, knobs) — and,
// for by_cell, on the input positions — never on thread count or
// scheduling — so results are reproducible from the config + input alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcs {

class Matrix;

/// One shard: either a contiguous participant range [begin, end) (rows
/// empty) or an explicit ascending member-row list (rows non-empty, with
/// begin/end then holding min and max+1 for reporting).
struct Shard {
    std::size_t index = 0;  ///< position within the plan
    std::size_t begin = 0;  ///< first row (inclusive)
    std::size_t end = 0;    ///< one past the last row
    /// Explicit members (ascending, duplicate-free) for non-contiguous
    /// shards; empty means the shard is exactly [begin, end).
    std::vector<std::uint32_t> rows;
    /// Source spatial cell ordinal for by_cell shards (first contributing
    /// cell when a shard packs several); SIZE_MAX for row planners.
    std::size_t cell = static_cast<std::size_t>(-1);

    bool contiguous() const { return rows.empty(); }
    std::size_t size() const {
        return rows.empty() ? end - begin : rows.size();
    }
    /// k-th member row, k in [0, size()).
    std::size_t row_at(std::size_t k) const {
        return rows.empty() ? begin + k : static_cast<std::size_t>(rows[k]);
    }
    /// FNV-1a over the member set (and contiguity), so a checkpoint can
    /// verify a journaled shard covers the same rows as the current plan
    /// even when begin/end alone are ambiguous (by_cell shards).
    std::uint64_t members_fingerprint() const;
};

/// What to do when `rows` does not divide evenly.
enum class ShardRemainder {
    /// Spread the remainder across the leading shards (sizes differ by at
    /// most one) — the balanced default for homogeneous workers.
    kSpread,
    /// Keep every shard at the nominal size and let the last shard run
    /// short — the right policy when shard size is itself a model knob
    /// (e.g. "exactly the paper's 158-participant block").
    kTail,
};

/// How a fleet decomposes into shards (RuntimeConfig::planner).
enum class PlannerMode {
    /// Row-index planners (by_size / by_count / whole): contiguous ranges,
    /// independent of the data. The default.
    kRows,
    /// Geographic planner (by_cell): participants grouped by the spatial
    /// cell of their mean observed position, cells packed in row-major
    /// grid order so neighbouring shards are spatial neighbours.
    kCell,
};

/// "rows" / "cell".
const char* to_string(PlannerMode mode);
/// Inverse of to_string; throws mcs::Error on anything else.
PlannerMode parse_planner_mode(const std::string& name);

/// A disjoint, ordered, complete cover of [0, rows) by shards.
class ShardPlan {
public:
    /// Partition `rows` into shards of (nominally) `shard_size` rows.
    /// kSpread rebalances to exactly ceil(rows/shard_size) near-equal
    /// shards (sizes within one of each other, so a shard can run one row
    /// short of nominal); kTail emits full shards plus one short tail.
    /// Throws on rows == 0 or shard_size == 0.
    static ShardPlan by_size(std::size_t rows, std::size_t shard_size,
                             ShardRemainder policy = ShardRemainder::kSpread);

    /// Partition `rows` into (about) min(shard_count, rows) shards.
    /// kSpread gives exactly that many, sizes balanced to within one row.
    /// kTail gives every shard ceil(rows/count) rows and stops when the
    /// rows run out — which can be *fewer* shards than requested (9 rows
    /// across 4 shards packs as 3+3+3): tail keeps the size nominal, not
    /// the count. Throws on rows == 0 or shard_count == 0.
    static ShardPlan by_count(std::size_t rows, std::size_t shard_count,
                              ShardRemainder policy = ShardRemainder::kSpread);

    /// Trivial single-shard plan covering [0, rows).
    static ShardPlan whole(std::size_t rows);

    /// Geographic decomposition (DESIGN.md §18). Each participant maps to
    /// the cell of a g×g grid over the bounding box of the fleet's mean
    /// observed positions (g = ceil(sqrt(rows / target_size)), so mean
    /// occupancy ≈ target_size); cells are visited in row-major order and
    /// greedily packed into shards under the balance contract:
    ///
    ///   every shard holds between max(1, target_size/2) and
    ///   2*target_size rows, except at most one undersized shard when the
    ///   trailing remainder cannot merge into its neighbour without
    ///   overflowing the cap.
    ///
    /// A single cell larger than the cap is split into balanced chunks of
    /// at most target_size rows. Participants with no observed positions
    /// are packed last, after the located cells. Deterministic in
    /// (sx, sy, existence, target_size) alone. Throws on empty input or
    /// target_size == 0.
    static ShardPlan by_cell(const Matrix& sx, const Matrix& sy,
                             const Matrix& existence,
                             std::size_t target_size);

    const std::vector<Shard>& shards() const { return shards_; }
    std::size_t count() const { return shards_.size(); }
    std::size_t rows() const { return rows_; }
    PlannerMode mode() const { return mode_; }
    /// Non-empty spatial cells behind a by_cell plan (0 for row planners).
    std::size_t cells() const { return cells_; }

    /// FNV-1a over (mode, rows, every shard's member fingerprint) — the
    /// identity the checkpoint manifest stores so a resume refuses a
    /// changed decomposition (slab geometry is keyed on the same value).
    std::uint64_t fingerprint() const;

private:
    ShardPlan(std::size_t rows, std::vector<Shard> shards,
              PlannerMode mode = PlannerMode::kRows, std::size_t cells = 0)
        : rows_(rows),
          shards_(std::move(shards)),
          mode_(mode),
          cells_(cells) {}

    std::size_t rows_ = 0;
    std::vector<Shard> shards_;
    PlannerMode mode_ = PlannerMode::kRows;
    std::size_t cells_ = 0;
};

}  // namespace mcs
