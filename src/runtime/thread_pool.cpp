#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/check.hpp"
#include "common/topology.hpp"

namespace mcs {

namespace {

// Worker identity, process-wide: set once per worker thread, never reset
// (a worker thread dies with its pool). SIZE_MAX = not a pool worker.
thread_local std::size_t tls_worker_index = static_cast<std::size_t>(-1);

}  // namespace

ThreadPool::ThreadPool(Options options) : options_(options) {
    std::size_t threads = options.threads;
    if (threads == 0) {
        // Effective CPUs, not hardware_concurrency: a pool sized past the
        // process's affinity mask oversubscribes by construction.
        threads = effective_cpu_count();
    }
    MCS_CHECK_MSG(options.queue_capacity >= 1,
                  "ThreadPool: queue capacity must be at least 1");
    workers_.reserve(threads);
    for (std::size_t k = 0; k < threads; ++k) {
        workers_.emplace_back([this, k] { worker_loop(k); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Graceful shutdown: nothing already accepted is dropped. Workers
        // keep draining the queue after `stopping_` flips; they only exit
        // once it is empty.
        stopping_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::worker_loop(std::size_t index) {
    tls_worker_index = index;
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            not_empty_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        not_full_.notify_one();
        try {
            task.fn();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            errors_.push_back(
                {std::move(task.label), std::current_exception()});
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) {
                idle_.notify_all();
            }
        }
    }
}

void ThreadPool::submit(std::function<void()> task, std::string label) {
    MCS_CHECK_MSG(task != nullptr, "ThreadPool: null task");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [this] {
            return stopping_ || queue_.size() < options_.queue_capacity;
        });
        MCS_CHECK_MSG(!stopping_, "ThreadPool: submit after shutdown");
        queue_.push_back({std::move(task), std::move(label)});
    }
    not_empty_.notify_one();
}

void ThreadPool::wait_idle() {
    std::vector<TaskError> errors;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
        errors = std::exchange(errors_, {});
    }
    if (!errors.empty()) {
        std::rethrow_exception(errors.front().error);
    }
}

std::exception_ptr ThreadPool::take_error() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::exception_ptr first =
        errors_.empty() ? nullptr : errors_.front().error;
    errors_.clear();
    return first;
}

std::vector<ThreadPool::TaskError> ThreadPool::take_errors() {
    std::unique_lock<std::mutex> lock(mutex_);
    return std::exchange(errors_, {});
}

bool ThreadPool::on_worker_thread() {
    return tls_worker_index != static_cast<std::size_t>(-1);
}

std::size_t ThreadPool::worker_index() { return tls_worker_index; }

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
    MCS_CHECK_MSG(begin <= end, "parallel_for: inverted range");
    MCS_CHECK_MSG(grain >= 1, "parallel_for: grain must be at least 1");
    MCS_CHECK_MSG(body != nullptr, "parallel_for: null body");
    MCS_CHECK_MSG(!on_worker_thread(),
                  "parallel_for: nested call from a pool worker");
    const std::size_t total = end - begin;
    if (total == 0) {
        return;
    }
    // Deterministic chunking: as many chunks as workers (so every worker
    // can participate) but never smaller than `grain`. Depends only on the
    // range and pool size — a fixed pool size gives fixed chunk boundaries.
    const std::size_t max_chunks = std::max<std::size_t>(
        1, std::min(size(), (total + grain - 1) / grain));
    if (max_chunks == 1) {
        body(begin, end);
        return;
    }
    const std::size_t chunk = (total + max_chunks - 1) / max_chunks;

    // Per-call completion state: the call must be re-entrant from several
    // non-worker threads at once, so nothing is stored in the pool.
    struct ForState {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t pending = 0;
        std::exception_ptr error;
    } state;
    state.pending = (total + chunk - 1) / chunk;

    for (std::size_t lo = begin; lo < end; lo += chunk) {
        const std::size_t hi = std::min(end, lo + chunk);
        submit([&state, &body, lo, hi] {
            try {
                body(lo, hi);
            } catch (...) {
                std::unique_lock<std::mutex> lock(state.mutex);
                if (state.error == nullptr) {
                    state.error = std::current_exception();
                }
            }
            std::unique_lock<std::mutex> lock(state.mutex);
            if (--state.pending == 0) {
                state.done.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done.wait(lock, [&state] { return state.pending == 0; });
    if (state.error != nullptr) {
        std::rethrow_exception(state.error);
    }
}

}  // namespace mcs
