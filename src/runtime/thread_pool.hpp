// ThreadPool — the execution engine of the mcs::runtime subsystem.
//
// A fixed set of worker threads drains a bounded MPMC task queue. The pool
// is deliberately simple (mutex + two condition variables, no lock-free
// tricks): every workload in this repo is coarse-grained — one task is a
// whole per-shard I(TS,CS) run or a block of GEMM rows — so queue overhead
// is noise next to task cost, and a boring queue is easy to prove correct
// under TSan.
//
// Contracts:
//   * submit() blocks while the queue is at capacity (bounded — a runaway
//     producer cannot OOM the server) and throws once shutdown began.
//   * Task exceptions never kill a worker: every one is captured with its
//     task label (submission order) and drained via take_errors(); the
//     first also re-throws from take_error() / wait_idle(). Nothing is
//     silently dropped — a fleet where three shards fail reports three
//     failures, not one.
//   * parallel_for() blocks the caller until every chunk completed and
//     re-throws the first exception thrown by a body. It must not be
//     called from inside a pool worker (nested data-parallelism would
//     deadlock a bounded pool) — doing so throws mcs::Error.
//   * The destructor is graceful: it finishes everything already queued,
//     then joins. Work submitted before destruction is never dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mcs {

class ThreadPool {
public:
    /// One captured task exception plus the label it was submitted under.
    struct TaskError {
        std::string label;         ///< submit() label; "" when unlabeled
        std::exception_ptr error;  ///< never nullptr
    };

    struct Options {
        std::size_t threads = 0;  ///< worker count; 0 = effective CPUs
                                  ///< (sched_getaffinity, common/topology.hpp)
        std::size_t queue_capacity = 1024;  ///< bound on queued (not running)
    };

    explicit ThreadPool(std::size_t threads)
        : ThreadPool(Options{threads, 1024}) {}
    explicit ThreadPool(Options options);

    /// Drains the queue, waits for running tasks, joins every worker.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Enqueue one task, optionally labeled for error attribution (e.g.
    /// "shard 3"). Blocks while the queue is full; throws mcs::Error after
    /// shutdown started.
    void submit(std::function<void()> task, std::string label = {});

    /// Block until no task is queued or running, then re-throw the first
    /// task exception captured since the last take_error[s]() (all captured
    /// errors are cleared — use take_errors() first to keep them).
    void wait_idle();

    /// First exception thrown by a submitted task since the last drain
    /// (nullptr if none). Clears ALL captured errors — a compatibility
    /// wrapper over take_errors() for callers that only act on one.
    /// parallel_for exceptions do not land here — they re-throw at the
    /// parallel_for call site.
    std::exception_ptr take_error();

    /// Every task exception captured since the last drain, in completion
    /// order, each with its submit() label. Clears the captured set.
    std::vector<TaskError> take_errors();

    /// Split [begin, end) into chunks of at least `grain` indices, run
    /// body(chunk_begin, chunk_end) across the pool, and block until all
    /// chunks finished. Chunk boundaries depend only on (begin, end,
    /// grain, size()) — never on scheduling — so a body that writes
    /// disjoint per-index outputs produces identical results at any
    /// thread count. Runs inline when the range is one chunk or the pool
    /// has a single worker. Throws mcs::Error when called from a pool
    /// worker thread (no nested data-parallelism).
    void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>&
                          body);

    /// True on any ThreadPool worker thread (any pool in the process) —
    /// the guard behind nested-parallel_for rejection and the serial
    /// fallback of the kernel row executor.
    static bool on_worker_thread();

    /// Index of the current worker within its pool (0-based); SIZE_MAX on
    /// threads that are not pool workers. Stable for the worker's lifetime
    /// — the key for per-worker arenas (see FleetRunner).
    static std::size_t worker_index();

private:
    struct QueuedTask {
        std::function<void()> fn;
        std::string label;
    };

    void worker_loop(std::size_t index);

    Options options_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;   // workers wait for tasks
    std::condition_variable not_full_;    // producers wait for capacity
    std::condition_variable idle_;        // wait_idle / destructor
    std::deque<QueuedTask> queue_;
    std::size_t active_ = 0;              // tasks currently executing
    bool stopping_ = false;
    std::vector<TaskError> errors_;       // every captured task exception
    std::vector<std::thread> workers_;
};

}  // namespace mcs
