#include "runtime/work_steal.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "runtime/thread_pool.hpp"

namespace mcs {

namespace {

constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

struct WorkerDeque {
    std::mutex mutex;
    std::deque<std::size_t> items;
};

}  // namespace

StealStats steal_run(
    ThreadPool* pool, std::size_t workers, std::size_t items,
    const std::function<void(std::size_t, std::size_t)>& fn) {
    MCS_CHECK_MSG(fn != nullptr, "steal_run: null work function");
    StealStats stats;
    if (items == 0) {
        return stats;
    }
    const std::size_t n = std::max<std::size_t>(
        1, std::min(workers == 0 ? 1 : workers, items));
    if (pool == nullptr || n == 1) {
        for (std::size_t k = 0; k < items; ++k) {
            fn(k, k + 1 < items ? k + 1 : kNoItem);
        }
        return stats;
    }

    // Deal items to deques in the same contiguous balanced blocks the old
    // parallel_for chunking used: deque w holds an ascending run of
    // neighbouring items.
    std::vector<std::unique_ptr<WorkerDeque>> deques;
    deques.reserve(n);
    const std::size_t base = items / n;
    const std::size_t extra = items % n;
    std::size_t at = 0;
    for (std::size_t w = 0; w < n; ++w) {
        auto dq = std::make_unique<WorkerDeque>();
        const std::size_t len = base + (w < extra ? 1 : 0);
        for (std::size_t k = 0; k < len; ++k) {
            dq->items.push_back(at + k);
        }
        at += len;
        deques.push_back(std::move(dq));
    }

    struct RunState {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t pending = 0;
        std::exception_ptr error;
        StealStats stats;
    } state;
    state.pending = n;

    auto worker = [&deques, &state, &fn, n](std::size_t w) {
        StealStats local;
        WorkerDeque& own = *deques[w];
        for (;;) {
            std::size_t item = kNoItem;
            std::size_t next = kNoItem;
            {
                std::unique_lock<std::mutex> lock(own.mutex);
                if (!own.items.empty()) {
                    item = own.items.front();
                    own.items.pop_front();
                    if (!own.items.empty()) {
                        next = own.items.front();
                    }
                }
            }
            if (item == kNoItem) {
                // Own deque dry: scan victims in deterministic order and
                // take the back half of the first non-empty one in a
                // single block (steal-half amortises the lock traffic and
                // keeps the stolen run contiguous for locality).
                bool stole = false;
                for (std::size_t off = 1; off < n && !stole; ++off) {
                    WorkerDeque& victim = *deques[(w + off) % n];
                    std::vector<std::size_t> taken;
                    {
                        std::unique_lock<std::mutex> lock(victim.mutex);
                        const std::size_t have = victim.items.size();
                        if (have == 0) {
                            continue;
                        }
                        const std::size_t grab = (have + 1) / 2;
                        taken.assign(victim.items.end() -
                                         static_cast<std::ptrdiff_t>(grab),
                                     victim.items.end());
                        victim.items.erase(
                            victim.items.end() -
                                static_cast<std::ptrdiff_t>(grab),
                            victim.items.end());
                    }
                    {
                        std::unique_lock<std::mutex> lock(own.mutex);
                        own.items.insert(own.items.end(), taken.begin(),
                                         taken.end());
                    }
                    local.steals += 1;
                    local.stolen_items += taken.size();
                    stole = true;
                }
                if (!stole) {
                    break;  // every deque dry — done
                }
                continue;
            }
            try {
                fn(item, next);
            } catch (...) {
                std::unique_lock<std::mutex> lock(state.mutex);
                if (state.error == nullptr) {
                    state.error = std::current_exception();
                }
            }
        }
        std::unique_lock<std::mutex> lock(state.mutex);
        state.stats.steals += local.steals;
        state.stats.stolen_items += local.stolen_items;
        if (--state.pending == 0) {
            state.done.notify_all();
        }
    };

    for (std::size_t w = 0; w < n; ++w) {
        pool->submit([&worker, w] { worker(w); }, "steal worker");
    }
    {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.done.wait(lock, [&state] { return state.pending == 0; });
        stats = state.stats;
        if (state.error != nullptr) {
            std::rethrow_exception(state.error);
        }
    }
    return stats;
}

}  // namespace mcs
