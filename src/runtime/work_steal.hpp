// Work-stealing shard scheduler (DESIGN.md §18).
//
// FleetRunner's shard loop used to be a static parallel_for: shard k went
// to chunk k/chunk_size, and a worker that drew a run of cheap shards
// (detect-only ladder exits, small by_cell shards) sat idle while another
// ground through the expensive ones. steal_run() replaces that with the
// classic per-worker-deque scheme: items are dealt to per-worker deques in
// the same deterministic contiguous blocks parallel_for would have used
// (locality: consecutive shards are spatial neighbours under by_cell),
// each worker pops its own deque from the front, and a worker whose deque
// runs dry locks a victim's deque and steals the back half in one block.
//
// Determinism: scheduling decides only WHEN and WHERE an item runs, never
// what it computes — each item's work function sees the item index alone,
// writes to item-private outputs, and the caller merges results in item
// order after the barrier (FleetRunner merges by shard index). So fleet
// output is bit-identical at any thread count and any steal interleaving;
// only the diagnostic steal counters and phase timings vary run-to-run.
//
// The implementation stays in the repo's "boring and TSan-provable" lane:
// one small mutex per deque, no lock-free tricks — items here are whole
// per-shard I(TS,CS) solves (milliseconds to seconds), so deque overhead
// is noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mcs {

class ThreadPool;

/// Diagnostic totals from one steal_run (scheduling-dependent — never
/// part of a bit-identity contract).
struct StealStats {
    std::uint64_t steals = 0;        ///< successful steal operations
    std::uint64_t stolen_items = 0;  ///< items that changed deques
};

/// Run fn(item, next_hint) for every item in [0, items) across
/// min(workers, items) deques scheduled over `pool`. `next_hint` is the
/// next item currently at the front of the executing worker's own deque
/// (SIZE_MAX when the deque is empty) — the out-of-core streamer uses it
/// to madvise-prefetch the next scheduled shard while this one computes.
///
/// Runs inline (in deal order, next_hint = following item) when pool is
/// null or the effective worker count is 1. Blocks until every item
/// completed; the first exception thrown by fn is re-thrown here after
/// the barrier (remaining items still run, matching parallel_for).
StealStats steal_run(
    ThreadPool* pool, std::size_t workers, std::size_t items,
    const std::function<void(std::size_t item, std::size_t next_hint)>& fn);

}  // namespace mcs
