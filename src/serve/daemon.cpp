#include "serve/daemon.hpp"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "corruption/chaos.hpp"
#include "persist/frame_io.hpp"
#include "serve/upload_codec.hpp"

namespace mcs {

namespace {

ServeConfig validated(ServeConfig config) {
    MCS_CHECK_MSG(config.participants > 0, "ServeConfig: no participants");
    MCS_CHECK_MSG(config.tau_s > 0.0, "ServeConfig: tau must be positive");
    MCS_CHECK_MSG(config.runtime.checkpoint_dir.empty(),
                  "ServeConfig: checkpoint_dir is a batch-run feature; the "
                  "daemon's durable state is its ingest journal");
    MCS_CHECK_MSG(!config.resume || !config.journal_path.empty(),
                  "ServeConfig: resume requires a journal_path");
    MCS_CHECK_MSG(config.runtime.memory_budget_mb == 0 &&
                      config.runtime.storage == StorageTier::kF64,
                  "ServeConfig: the out-of-core slab store is a batch-run "
                  "feature; a serving window fits in memory by construction "
                  "(size it with `window`/`stride` instead)");
    return config;
}

std::size_t resolve_slot_loss(const ServeConfig& config) {
    if (config.slot_loss_every != 0) {
        return config.slot_loss_every;
    }
    if (config.runtime.chaos != nullptr) {
        return config.runtime.chaos->config().slot_loss_every;
    }
    return 0;
}

StreamingDetector::Config build_detector(const ServeConfig& config,
                                         FleetRunner& runner) {
    StreamingDetector::Config dc;
    dc.window = config.window;
    dc.stride = config.stride;
    dc.framework = config.framework;
    dc.evaluator = runner.window_evaluator();
    dc.warm_start = config.warm_start;
    dc.warm_verify_every = config.warm_verify_every;
    dc.warm_verify_tolerance = config.warm_verify_tolerance;
    return dc;
}

StreamHeader stream_header_of(const ServeConfig& config) {
    StreamHeader header;
    header.participants = config.participants;
    header.tau_s = config.tau_s;
    header.window = config.window;
    header.stride = config.stride;
    return header;
}

// Boundary validation, mirroring ItscsInput::validate: the daemon refuses
// a malformed upload with a report instead of letting MCS_CHECK unwind the
// consumer thread or a NaN poison the window. Empty string = acceptable.
std::string validate_upload(const SlotUpload& upload, std::size_t n) {
    if (upload.x.size() != n || upload.y.size() != n ||
        upload.vx.size() != n || upload.vy.size() != n ||
        upload.observed.size() != n) {
        return "vector sizes (" + std::to_string(upload.x.size()) + ", " +
               std::to_string(upload.y.size()) + ", " +
               std::to_string(upload.vx.size()) + ", " +
               std::to_string(upload.vy.size()) + ", " +
               std::to_string(upload.observed.size()) +
               ") do not match the fleet size " + std::to_string(n);
    }
    const struct {
        const std::vector<double>* series;
        const char* name;
    } series[] = {{&upload.x, "x"},
                  {&upload.y, "y"},
                  {&upload.vx, "vx"},
                  {&upload.vy, "vy"}};
    for (const auto& entry : series) {
        for (std::size_t i = 0; i < n; ++i) {
            if (upload.observed[i] != 0 &&
                !std::isfinite((*entry.series)[i])) {
                return std::string(entry.name) +
                       " non-finite at participant " + std::to_string(i) +
                       " in an observed reading";
            }
        }
    }
    return "";
}

}  // namespace

IngestDaemon::IngestDaemon(ServeConfig config)
    : config_(validated(std::move(config))),
      slot_loss_every_(resolve_slot_loss(config_)),
      runner_(config_.runtime),
      detector_(config_.participants, config_.tau_s,
                build_detector(config_, runner_)),
      queue_(config_.queue_capacity),
      quarantine_(config_.participants, 0) {
    detector_.attach_context(&ctx_);
}

IngestDaemon::~IngestDaemon() {
    try {
        finish();
    } catch (...) {
        // A tail-flush evaluation failure must not terminate; the caller
        // who cares calls finish() directly and sees the exception there.
    }
}

void IngestDaemon::start() {
    MCS_CHECK_MSG(!running_ && !consumer_.joinable(),
                  "IngestDaemon: already started");
    if (!config_.journal_path.empty()) {
        if (config_.resume) {
            replay_journal();
        } else {
            writer_ = std::make_unique<FrameWriter>(config_.journal_path,
                                                    /*truncate=*/true);
            writer_->append(encode_stream_header(stream_header_of(config_)));
        }
    }
    running_ = true;
    consumer_ = std::thread([this] {
        while (auto upload = queue_.pop()) {
            process(std::move(*upload));
        }
    });
}

bool IngestDaemon::submit(SlotUpload upload) {
    return queue_.push(std::move(upload));
}

void IngestDaemon::finish() {
    if (!running_) {
        return;
    }
    queue_.close();
    if (consumer_.joinable()) {
        consumer_.join();
    }
    running_ = false;
    if (config_.flush_tail) {
        detector_.flush();
        pump_reports();
    }
    writer_.reset();
}

std::vector<WindowReport> IngestDaemon::drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<WindowReport> out = std::move(pending_);
    pending_.clear();
    return out;
}

std::vector<FailureReport> IngestDaemon::drain_failures() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FailureReport> out = std::move(failures_);
    failures_.clear();
    return out;
}

ServeStats IngestDaemon::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::vector<std::size_t> IngestDaemon::quarantined() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < quarantine_.size(); ++i) {
        if (quarantine_[i] != 0) {
            out.push_back(i);
        }
    }
    return out;
}

// Journal recovery: scan, report and drop what a crash left behind, refuse
// a journal recorded for a different stream, then re-ingest every
// surviving slot so the detector's window, warm state and report sequence
// continue exactly where the dead process stopped.
void IngestDaemon::replay_journal() {
    FrameScan scan = scan_frames(config_.journal_path);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.journal_corrupt_frames = scan.corrupt_frames;
        stats_.journal_torn_tail = scan.torn_tail;
        for (const std::string& error : scan.errors) {
            FailureReport report;
            report.kind = FailureKind::kCheckpointCorrupt;
            report.phase = "ingest_journal";
            report.detail = error;
            failures_.push_back(std::move(report));
        }
    }
    if (scan.frames.empty()) {
        // No journal (or nothing survived): same as a fresh start.
        writer_ = std::make_unique<FrameWriter>(config_.journal_path,
                                                /*truncate=*/true);
        writer_->append(encode_stream_header(stream_header_of(config_)));
        return;
    }
    MCS_CHECK_MSG(is_stream_header(scan.frames.front()),
                  "ingest journal: first frame is not a stream header; "
                  "delete " + config_.journal_path + " to start over");
    const StreamHeader stored = decode_stream_header(scan.frames.front());
    const std::string why = stream_header_of(config_).mismatch(stored);
    MCS_CHECK_MSG(why.empty(),
                  "ingest journal resume refused (" + why + "); delete " +
                      config_.journal_path + " or drop resume");

    std::vector<std::vector<std::uint8_t>> kept;
    kept.reserve(scan.frames.size());
    kept.push_back(std::move(scan.frames.front()));
    for (std::size_t k = 1; k < scan.frames.size(); ++k) {
        bool ok = false;
        try {
            SlotUpload upload = decode_slot_upload(scan.frames[k]);
            ok = upload.observed.size() == config_.participants;
            if (ok) {
                // Replay bypasses validation, slotloss and journaling:
                // the journal holds what the original process *accepted*.
                detector_.push_slot(upload);
            }
        } catch (const std::exception&) {
            ok = false;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (ok) {
            ++stats_.slots_replayed;
            kept.push_back(std::move(scan.frames[k]));
        } else {
            ++stats_.journal_corrupt_frames;
            FailureReport report;
            report.kind = FailureKind::kCheckpointCorrupt;
            report.phase = "ingest_journal";
            report.iteration = k;
            report.detail = "undecodable slot frame dropped";
            failures_.push_back(std::move(report));
        }
    }
    pump_reports();

    if (scan.corrupt_frames > 0 || scan.torn_tail ||
        kept.size() != scan.frames.size()) {
        // Compact before appending so the journal never accumulates dead
        // bytes across restarts (same discipline as the checkpoint store).
        rewrite_frames(config_.journal_path, kept);
    }
    writer_ = std::make_unique<FrameWriter>(config_.journal_path,
                                            /*truncate=*/false);
}

SlotUpload IngestDaemon::blank_slot() const {
    SlotUpload blank;
    blank.x.assign(config_.participants, 0.0);
    blank.y.assign(config_.participants, 0.0);
    blank.vx.assign(config_.participants, 0.0);
    blank.vy.assign(config_.participants, 0.0);
    blank.observed.assign(config_.participants, 0);
    return blank;
}

// Consumer-thread ingest of one live upload: slotloss chaos, boundary
// validation, journal append, timed detector push.
void IngestDaemon::process(SlotUpload upload) {
    std::size_t ordinal = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ordinal = ++ordinal_;
    }
    if (slot_loss_every_ > 0 && ordinal % slot_loss_every_ == 0) {
        // The k-th upload is lost in transit; the daemon still advances
        // the slot clock with an all-missing column (and journals *that*,
        // so a replay reproduces the degraded window, not the lost data).
        upload = blank_slot();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.slots_dropped;
    }
    const std::string why = validate_upload(upload, config_.participants);
    if (!why.empty()) {
        FailureReport report;
        report.kind = FailureKind::kRejectedUpload;
        report.phase = "ingest";
        report.iteration = ordinal;
        report.detail = why;
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.uploads_rejected;
        failures_.push_back(std::move(report));
        return;
    }
    // Client-side quarantine enforcement: a confirmed participant may keep
    // uploading, but its readings are refused at the boundary — the slot
    // ingests with those cells dark and each refusal is reported. Runs
    // *before* the journal append, so the journal records the enforced
    // stream and a resume replay reproduces every window bit-identically
    // without re-enforcing.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < quarantine_.size(); ++i) {
            if (quarantine_[i] == 0 || upload.observed[i] == 0) {
                continue;
            }
            upload.observed[i] = 0;
            upload.x[i] = 0.0;
            upload.y[i] = 0.0;
            upload.vx[i] = 0.0;
            upload.vy[i] = 0.0;
            ++stats_.readings_quarantined;
            FailureReport report;
            report.kind = FailureKind::kRejectedUpload;
            report.phase = "quarantine";
            report.iteration = ordinal;
            report.shard = i;
            report.detail = "participant " + std::to_string(i) +
                            " is quarantined; reading refused";
            failures_.push_back(std::move(report));
        }
    }
    if (writer_ != nullptr) {
        writer_->append(encode_slot_upload(upload));
    }
    const auto begin = std::chrono::steady_clock::now();
    detector_.push_slot(upload);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.uploads_accepted;
        stats_.slot_latency_ms.push_back(ms);
    }
    pump_reports();
}

void IngestDaemon::pump_reports() {
    while (auto report = detector_.poll()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.windows_evaluated;
        // Union this window's confirmed quarantine into the sticky
        // enforcement set; later slots from these participants are
        // refused at the ingest boundary.
        for (const std::size_t q : report->quarantined) {
            if (q < quarantine_.size() && quarantine_[q] == 0) {
                quarantine_[q] = 1;
                ++stats_.participants_quarantined;
            }
        }
        pending_.push_back(std::move(*report));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.windows_warm = detector_.warm_windows();
    stats_.warm_resets = detector_.warm_resets();
    stats_.shards_stolen = ctx_.counters().shards_stolen;
}

}  // namespace mcs
