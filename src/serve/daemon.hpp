// IngestDaemon — the long-running service layer over the batch engine
// (DESIGN.md §15).
//
// Producers submit() per-slot SlotUploads into a bounded MPMC queue
// (backpressure, not drops); a single consumer thread validates each
// upload at the boundary (satellite of ItscsInput::validate — a malformed
// or non-finite upload becomes a kRejectedUpload FailureReport instead of
// corrupting the window), appends it to a CRC-framed ingest journal
// (persist/frame_io), and feeds it to a StreamingDetector whose windows
// evaluate shard-parallel through an owned FleetRunner. Consecutive
// windows warm-start ASD from the previous window's factors.
//
// Crash recovery: the journal *is* the durable state. On start() with
// resume, the journal is scanned (corrupt frames skipped and reported,
// torn tail truncated, the file compacted), its header is handshaken
// against this daemon's configuration, and every surviving slot is
// re-pushed — without re-journaling — through the same detector. Because
// evaluation is a deterministic function of the slot sequence, a daemon
// killed mid-window regenerates the exact window state and its subsequent
// WindowReports are bit-identical to an uninterrupted run's.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/context.hpp"
#include "common/failure.hpp"
#include "core/streaming.hpp"
#include "runtime/fleet_runner.hpp"
#include "serve/ingest_queue.hpp"

namespace mcs {

class FrameWriter;

/// Configuration of one ingestion daemon.
struct ServeConfig {
    std::size_t participants = 0;  ///< fleet size (required, > 0)
    double tau_s = 30.0;           ///< slot duration
    std::size_t window = 60;       ///< slots per evaluation window
    std::size_t stride = 20;       ///< slots between evaluations
    ItscsConfig framework;
    /// Shard/thread/tier/solver knobs for the per-window fleet runs. The
    /// chaos injector doubles as the slotloss source; checkpoint_dir must
    /// stay empty (the ingest journal is the daemon's durable state).
    RuntimeConfig runtime;
    /// Ingest journal path; empty disables journaling (and resume).
    std::string journal_path;
    /// Scan + replay the journal in start() instead of truncating it.
    bool resume = false;
    /// Carry CS factors across windows (StreamingDetector::Config).
    bool warm_start = true;
    std::size_t warm_verify_every = 0;
    double warm_verify_tolerance = 1e-2;
    /// Bound on queued uploads; producers block when it is reached.
    std::size_t queue_capacity = 256;
    /// Drop every k-th accepted upload (an all-unobserved slot is ingested
    /// and journaled in its place, keeping the window slot-aligned).
    /// 0 = resolve from runtime.chaos's `slotloss=<k>`; explicit wins.
    std::size_t slot_loss_every = 0;
    /// Evaluate the partial tail window in finish().
    bool flush_tail = true;
};

/// Observable state of one daemon run. Latencies are live slots only
/// (replayed slots are bookkeeping, not service time).
struct ServeStats {
    std::size_t uploads_accepted = 0;  ///< validated, journaled, ingested
    std::size_t uploads_rejected = 0;  ///< refused with a FailureReport
    std::size_t slots_dropped = 0;     ///< slotloss chaos replacements
    std::size_t slots_replayed = 0;    ///< re-ingested from the journal
    std::size_t windows_evaluated = 0;
    std::size_t windows_warm = 0;      ///< evaluated with a warm seed
    std::size_t warm_resets = 0;       ///< verification-gate trips
    /// Participants the defence confirmed in quarantine (sticky for the
    /// daemon's lifetime — an enforced participant uploads nothing, so it
    /// can never demonstrate innocence to a later window).
    std::size_t participants_quarantined = 0;
    /// Observed readings refused at the boundary because their
    /// participant was quarantined (each becomes a kRejectedUpload
    /// FailureReport with phase "quarantine").
    std::size_t readings_quarantined = 0;
    /// Shards executed by a thief worker across all window evaluations —
    /// the work-stealing scheduler's load-balance signal (results are
    /// bit-identical either way; this is purely diagnostic).
    std::size_t shards_stolen = 0;
    std::size_t journal_corrupt_frames = 0;
    bool journal_torn_tail = false;
    /// Wall time of each live push_slot (ms); stride-boundary slots carry
    /// their window's evaluation, so the p99 is the evaluation latency.
    std::vector<double> slot_latency_ms;
};

/// The ingestion daemon. Lifecycle: construct → start() → submit()× →
/// finish() → drain()/stats()/context(). submit() may be called from any
/// number of producer threads between start() and finish().
class IngestDaemon {
public:
    explicit IngestDaemon(ServeConfig config);
    ~IngestDaemon();

    IngestDaemon(const IngestDaemon&) = delete;
    IngestDaemon& operator=(const IngestDaemon&) = delete;

    /// Open (or replay) the journal and spawn the consumer thread.
    /// Throws on a resume handshake mismatch — a journal recorded for a
    /// different stream shape must not seed this daemon.
    void start();

    /// Enqueue one upload; blocks while the queue is full. Returns false
    /// once finish() has closed the stream.
    bool submit(SlotUpload upload);

    /// Close the queue, drain it, join the consumer and (optionally)
    /// flush the partial tail window. Idempotent.
    void finish();

    /// Pop every pending WindowReport, oldest first. Callable while
    /// running (reports appear as stride boundaries pass) or after
    /// finish().
    std::vector<WindowReport> drain();

    /// Pop every pending FailureReport (rejected uploads, journal
    /// corruption), oldest first.
    std::vector<FailureReport> drain_failures();

    /// Snapshot of the run's statistics.
    ServeStats stats() const;

    /// Participants currently under client-side quarantine enforcement
    /// (sorted). Filled by window evaluations when the runner carries a
    /// non-idle DefenseSuite; empty otherwise.
    std::vector<std::size_t> quarantined() const;

    /// Merged instrumentation of every window evaluation. Single-owner:
    /// read it only after finish().
    PipelineContext& context() { return ctx_; }

    const ServeConfig& config() const { return config_; }
    std::size_t threads() const { return runner_.threads(); }

private:
    void replay_journal();
    void process(SlotUpload upload);
    void pump_reports();
    SlotUpload blank_slot() const;

    ServeConfig config_;
    std::size_t slot_loss_every_ = 0;  // resolved from config/chaos
    FleetRunner runner_;
    PipelineContext ctx_;
    StreamingDetector detector_;
    IngestQueue queue_;
    std::unique_ptr<FrameWriter> writer_;
    std::thread consumer_;
    bool running_ = false;

    mutable std::mutex mutex_;  // guards everything below
    ServeStats stats_;
    std::vector<WindowReport> pending_;
    std::vector<FailureReport> failures_;
    std::size_t ordinal_ = 0;  // accepted-upload counter (slotloss phase)
    /// Sticky per-participant quarantine flags (union of every window's
    /// confirmed quarantine). Enforced at the ingest boundary *before*
    /// journaling, so the journal records the enforced stream and a
    /// resume replay reproduces decisions without re-enforcing.
    std::vector<std::uint8_t> quarantine_;
};

}  // namespace mcs
