#include "serve/ingest_queue.hpp"

#include <utility>

#include "common/check.hpp"

namespace mcs {

IngestQueue::IngestQueue(std::size_t capacity) : capacity_(capacity) {
    MCS_CHECK_MSG(capacity >= 1, "IngestQueue: capacity must be >= 1");
}

bool IngestQueue::push(SlotUpload upload) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
        return closed_ || items_.size() < capacity_;
    });
    if (closed_) {
        return false;
    }
    items_.push_back(std::move(upload));
    lock.unlock();
    not_empty_.notify_one();
    return true;
}

std::optional<SlotUpload> IngestQueue::pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
        return std::nullopt;  // closed and drained
    }
    SlotUpload upload = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return upload;
}

void IngestQueue::close() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
}

std::size_t IngestQueue::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

bool IngestQueue::closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

}  // namespace mcs
