// Bounded MPMC hand-off between upload producers and the ingestion
// daemon's consumer thread (DESIGN.md §15).
//
// Producers block in push() while the queue is full — backpressure, not
// drops: an overloaded daemon slows its clients down instead of silently
// losing slots (loss is an explicit chaos fault, `slotloss=<k>`). close()
// wakes everyone: pending push()es fail, pop() drains what is left and
// then reports end-of-stream. The shape mirrors the runtime ThreadPool's
// task queue, specialised to SlotUpload and with a capacity bound.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "core/streaming.hpp"

namespace mcs {

class IngestQueue {
public:
    /// `capacity` bounds the number of buffered uploads (>= 1).
    explicit IngestQueue(std::size_t capacity);

    IngestQueue(const IngestQueue&) = delete;
    IngestQueue& operator=(const IngestQueue&) = delete;

    /// Enqueue one upload; blocks while the queue is full. Returns false
    /// (dropping the upload) when the queue is closed.
    bool push(SlotUpload upload);

    /// Dequeue the oldest upload; blocks while the queue is empty. Returns
    /// nullopt once the queue is closed *and* drained.
    std::optional<SlotUpload> pop();

    /// End the stream: wake every blocked producer and consumer. Buffered
    /// uploads remain poppable; further push()es fail.
    void close();

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    bool closed() const;

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<SlotUpload> items_;
    bool closed_ = false;
};

}  // namespace mcs
