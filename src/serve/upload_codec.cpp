#include "serve/upload_codec.hpp"

#include "common/check.hpp"
#include "persist/frame_io.hpp"

namespace mcs {

namespace {

// One tag byte leads every payload so a scanner can classify frames
// without attempting a full decode.
constexpr std::uint8_t kHeaderTag = 'H';
constexpr std::uint8_t kSlotTag = 'S';

constexpr std::uint32_t kCodecVersion = 1;

}  // namespace

std::string StreamHeader::mismatch(const StreamHeader& other) const {
    if (version != other.version) {
        return "codec version differs (" + std::to_string(version) +
               " vs " + std::to_string(other.version) + ")";
    }
    if (participants != other.participants) {
        return "participants differ (" + std::to_string(participants) +
               " vs " + std::to_string(other.participants) + ")";
    }
    if (tau_s != other.tau_s) {
        return "tau differs";
    }
    if (window != other.window) {
        return "window differs (" + std::to_string(window) + " vs " +
               std::to_string(other.window) + ")";
    }
    if (stride != other.stride) {
        return "stride differs (" + std::to_string(stride) + " vs " +
               std::to_string(other.stride) + ")";
    }
    return "";
}

std::vector<std::uint8_t> encode_stream_header(const StreamHeader& header) {
    ByteWriter w;
    w.put_u8(kHeaderTag);
    w.put_u32(header.version);
    w.put_u64(header.participants);
    w.put_f64(header.tau_s);
    w.put_u64(header.window);
    w.put_u64(header.stride);
    return w.bytes();
}

StreamHeader decode_stream_header(std::span<const std::uint8_t> payload) {
    ByteReader r(payload);
    MCS_CHECK_MSG(r.get_u8() == kHeaderTag,
                  "ingest journal: frame is not a stream header");
    StreamHeader header;
    header.version = r.get_u32();
    MCS_CHECK_MSG(header.version == kCodecVersion,
                  "ingest journal: unsupported codec version " +
                      std::to_string(header.version));
    header.participants = r.get_u64();
    header.tau_s = r.get_f64();
    header.window = r.get_u64();
    header.stride = r.get_u64();
    MCS_CHECK_MSG(r.at_end(), "ingest journal: trailing header bytes");
    return header;
}

std::vector<std::uint8_t> encode_slot_upload(const SlotUpload& upload) {
    const std::size_t n = upload.observed.size();
    MCS_CHECK_MSG(upload.x.size() == n && upload.y.size() == n &&
                      upload.vx.size() == n && upload.vy.size() == n,
                  "encode_slot_upload: vector size mismatch");
    ByteWriter w;
    w.put_u8(kSlotTag);
    w.put_u64(n);
    for (std::size_t i = 0; i < n; ++i) {
        w.put_u8(upload.observed[i]);
    }
    // All four series are stored for every participant — unobserved cells
    // too — so the journal replays exactly the bytes that were ingested.
    for (const std::vector<double>* series :
         {&upload.x, &upload.y, &upload.vx, &upload.vy}) {
        for (std::size_t i = 0; i < n; ++i) {
            w.put_f64((*series)[i]);
        }
    }
    return w.bytes();
}

SlotUpload decode_slot_upload(std::span<const std::uint8_t> payload) {
    ByteReader r(payload);
    MCS_CHECK_MSG(r.get_u8() == kSlotTag,
                  "ingest journal: frame is not a slot upload");
    const std::uint64_t n = r.get_u64();
    SlotUpload upload;
    upload.observed.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        upload.observed[i] = r.get_u8();
    }
    for (std::vector<double>* series :
         {&upload.x, &upload.y, &upload.vx, &upload.vy}) {
        series->resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            (*series)[i] = r.get_f64();
        }
    }
    MCS_CHECK_MSG(r.at_end(), "ingest journal: trailing slot bytes");
    return upload;
}

bool is_stream_header(std::span<const std::uint8_t> payload) {
    return !payload.empty() && payload.front() == kHeaderTag;
}

bool is_slot_upload(std::span<const std::uint8_t> payload) {
    return !payload.empty() && payload.front() == kSlotTag;
}

}  // namespace mcs
