// Wire codec for the ingest journal (DESIGN.md §15): SlotUploads encoded
// as CRC-framed payloads of the persist/frame_io journal.
//
// Frame 0 is a StreamHeader — the resume handshake, playing the role the
// CheckpointManifest plays for batch checkpoints: a journal written for
// one fleet shape must not seed a daemon configured for another. Every
// further frame is one slot, readings stored as bit-exact IEEE-754
// doubles, so a replayed stream reproduces the original run's windows
// bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/streaming.hpp"

namespace mcs {

/// Identity of an ingest stream. Mirrors the ServeConfig fields that
/// change what a replayed journal would compute.
struct StreamHeader {
    std::uint32_t version = 1;       ///< codec version (bumped on change)
    std::uint64_t participants = 0;  ///< fleet size (vector lengths)
    double tau_s = 0.0;              ///< slot duration
    std::uint64_t window = 0;        ///< detector window (slots)
    std::uint64_t stride = 0;        ///< detector stride (slots)

    /// Empty string when `other` describes the same stream; otherwise the
    /// first mismatching field, human-readable (the refusal message).
    std::string mismatch(const StreamHeader& other) const;
};

/// Encode / decode the header frame. decode throws mcs::Error on a
/// malformed or non-header payload.
std::vector<std::uint8_t> encode_stream_header(const StreamHeader& header);
StreamHeader decode_stream_header(std::span<const std::uint8_t> payload);

/// Encode / decode one slot frame. decode throws mcs::Error on a
/// malformed or non-slot payload; the upload round-trips bit-exactly.
std::vector<std::uint8_t> encode_slot_upload(const SlotUpload& upload);
SlotUpload decode_slot_upload(std::span<const std::uint8_t> payload);

/// Tag dispatch: does this payload carry a StreamHeader / a SlotUpload?
bool is_stream_header(std::span<const std::uint8_t> payload);
bool is_slot_upload(std::span<const std::uint8_t> payload);

}  // namespace mcs
