#include "trace/dataset.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace mcs {

void TraceDataset::validate() const {
    const std::size_t n = x.rows();
    const std::size_t t = x.cols();
    MCS_CHECK_MSG(n > 0 && t > 0, "TraceDataset: empty dataset");
    MCS_CHECK_MSG(y.rows() == n && y.cols() == t,
                  "TraceDataset: Y shape mismatch");
    MCS_CHECK_MSG(vx.rows() == n && vx.cols() == t,
                  "TraceDataset: Vx shape mismatch");
    MCS_CHECK_MSG(vy.rows() == n && vy.cols() == t,
                  "TraceDataset: Vy shape mismatch");
    MCS_CHECK_MSG(tau_s > 0.0, "TraceDataset: tau must be positive");
}

Matrix estimate_velocity(const Matrix& coordinate, const Matrix& existence,
                         double tau_s, double max_speed_mps) {
    MCS_CHECK_MSG(coordinate.rows() == existence.rows() &&
                      coordinate.cols() == existence.cols(),
                  "estimate_velocity: shape mismatch");
    MCS_CHECK_MSG(tau_s > 0.0, "estimate_velocity: tau must be positive");
    MCS_CHECK_MSG(max_speed_mps >= 0.0,
                  "estimate_velocity: negative speed cap");
    const std::size_t n = coordinate.rows();
    const std::size_t t = coordinate.cols();
    Matrix velocity(n, t);
    for (std::size_t i = 0; i < n; ++i) {
        // Observed slot indices for this row.
        std::vector<std::size_t> observed;
        observed.reserve(t);
        for (std::size_t j = 0; j < t; ++j) {
            if (existence(i, j) != 0.0) {
                observed.push_back(j);
            }
        }
        if (observed.size() < 2) {
            continue;  // nothing to difference; leave zeros
        }
        for (std::size_t k = 0; k < observed.size(); ++k) {
            const std::size_t j = observed[k];
            const std::size_t prev = observed[k > 0 ? k - 1 : k];
            const std::size_t next =
                observed[k + 1 < observed.size() ? k + 1 : k];
            const double span =
                static_cast<double>(next - prev) * tau_s;
            double estimate =
                (coordinate(i, next) - coordinate(i, prev)) / span;
            if (max_speed_mps > 0.0) {
                estimate = std::clamp(estimate, -max_speed_mps,
                                      max_speed_mps);
            }
            velocity(i, j) = estimate;
        }
        // Unobserved slots inherit the nearest observed estimate so the
        // Average Velocity Matrix stays meaningful across gaps.
        std::size_t cursor = 0;
        for (std::size_t j = 0; j < t; ++j) {
            if (existence(i, j) != 0.0) {
                continue;
            }
            while (cursor + 1 < observed.size() &&
                   observed[cursor + 1] <= j) {
                ++cursor;
            }
            std::size_t source = observed[cursor];
            if (cursor + 1 < observed.size() &&
                observed[cursor + 1] - j < j - observed[cursor]) {
                source = observed[cursor + 1];
            }
            velocity(i, j) = velocity(i, source);
        }
    }
    return velocity;
}

}  // namespace mcs
