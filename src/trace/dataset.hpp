// The trace dataset: Coordinate Matrices and velocity matrices.
//
// Mirrors Definitions 1 and the velocity matrices of §III-B of the paper:
// X, Y hold each participant's true coordinates per timeslot (metres);
// Vx, Vy hold the instantaneous velocity components sampled at the same
// instants (m/s); tau is the slot duration in seconds.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/temporal.hpp"  // average_velocity (Eq. 11)

namespace mcs {

/// Ground-truth location dataset for n participants over t timeslots.
struct TraceDataset {
    Matrix x;    ///< n x t, x coordinate in metres
    Matrix y;    ///< n x t, y coordinate in metres
    Matrix vx;   ///< n x t, instantaneous x velocity in m/s
    Matrix vy;   ///< n x t, instantaneous y velocity in m/s
    double tau_s = 30.0;  ///< slot duration

    std::size_t participants() const { return x.rows(); }
    std::size_t slots() const { return x.cols(); }

    /// Throws mcs::Error unless all four matrices agree in shape and
    /// tau_s > 0.
    void validate() const;
};

/// Estimate instantaneous velocities from positions by central finite
/// differences over *observed* slots: v(i,j) ≈ (x(i,next) − x(i,prev)) /
/// ((next − prev)·τ) using the nearest observed neighbours of slot j
/// (one-sided at the boundaries; 0 when a row has < 2 observations).
/// Lets deployments without velocity uploads still run the full
/// velocity-improved pipeline — at reduced fidelity, since differencing a
/// faulty position poisons the local velocity estimate. Passing a
/// positive `max_speed_mps` clamps each estimate to that physical cap,
/// which defuses the km-scale estimates a faulty position would
/// otherwise inject (vehicles have a top speed; use it).
Matrix estimate_velocity(const Matrix& coordinate, const Matrix& existence,
                         double tau_s, double max_speed_mps = 0.0);

}  // namespace mcs
