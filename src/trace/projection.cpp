#include "trace/projection.hpp"

#include <cmath>
#include <numbers>

namespace mcs {

namespace {

constexpr double kEarthRadiusM = 6371000.0;
constexpr double kDegToRad = std::numbers::pi / 180.0;

}  // namespace

Projection::Projection() : Projection(GeoPoint{31.23, 121.47}) {}

Projection::Projection(GeoPoint reference) : reference_(reference) {
    metres_per_deg_lat_ = kEarthRadiusM * kDegToRad;
    metres_per_deg_lon_ =
        kEarthRadiusM * kDegToRad * std::cos(reference.latitude_deg * kDegToRad);
}

LocalPoint Projection::to_local(GeoPoint p) const {
    return {
        (p.longitude_deg - reference_.longitude_deg) * metres_per_deg_lon_,
        (p.latitude_deg - reference_.latitude_deg) * metres_per_deg_lat_,
    };
}

GeoPoint Projection::to_geo(LocalPoint p) const {
    return {
        reference_.latitude_deg + p.y_m / metres_per_deg_lat_,
        reference_.longitude_deg + p.x_m / metres_per_deg_lon_,
    };
}

double Projection::distance_m(LocalPoint a, LocalPoint b) {
    const double dx = a.x_m - b.x_m;
    const double dy = a.y_m - b.y_m;
    return std::sqrt(dx * dx + dy * dy);
}

}  // namespace mcs
