// Geographic projection between (latitude, longitude) and local metres.
//
// The paper works in metres (reconstruction error "about 200m", spatial size
// "110 x 140 km"). We use an equirectangular projection about a reference
// point (default: central Shanghai, matching SUVnet's coverage) — accurate to
// well under 0.5% over a metropolitan extent, which is far below the fault
// magnitudes (kilometres) the detector must find.
#pragma once

namespace mcs {

/// WGS-84 style geographic coordinate in degrees.
struct GeoPoint {
    double latitude_deg;
    double longitude_deg;
};

/// Planar position in metres relative to a projection origin.
struct LocalPoint {
    double x_m;  ///< east
    double y_m;  ///< north
};

/// Equirectangular projection anchored at a reference geographic point.
class Projection {
public:
    /// Default reference: central Shanghai (31.23 N, 121.47 E).
    Projection();
    explicit Projection(GeoPoint reference);

    GeoPoint reference() const { return reference_; }

    /// Geographic -> local metres.
    LocalPoint to_local(GeoPoint p) const;

    /// Local metres -> geographic.
    GeoPoint to_geo(LocalPoint p) const;

    /// Planar distance in metres between two local points.
    static double distance_m(LocalPoint a, LocalPoint b);

private:
    GeoPoint reference_;
    double metres_per_deg_lat_;
    double metres_per_deg_lon_;
};

}  // namespace mcs
