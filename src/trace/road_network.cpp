#include "trace/road_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mcs {

RoadNetwork::RoadNetwork(const RoadNetworkConfig& config) : config_(config) {
    MCS_CHECK_MSG(config.block_m > 0.0, "block size must be positive");
    MCS_CHECK_MSG(config.width_m >= config.block_m &&
                      config.height_m >= config.block_m,
                  "network extent must cover at least one block");
    MCS_CHECK_MSG(config.arterial_every >= 1, "arterial_every must be >= 1");
    MCS_CHECK_MSG(config.local_speed_mps > 0.0 &&
                      config.arterial_speed_mps > 0.0,
                  "speed limits must be positive");
    nx_ = static_cast<std::size_t>(config.width_m / config.block_m) + 1;
    ny_ = static_cast<std::size_t>(config.height_m / config.block_m) + 1;
    MCS_CHECK(nx_ >= 2 && ny_ >= 2);
}

LocalPoint RoadNetwork::position(NodeId node) const {
    MCS_CHECK_MSG(node < num_nodes(), "invalid node id");
    return {static_cast<double>(node_ix(node)) * config_.block_m,
            static_cast<double>(node_iy(node)) * config_.block_m};
}

std::vector<NodeId> RoadNetwork::neighbours(NodeId node) const {
    MCS_CHECK_MSG(node < num_nodes(), "invalid node id");
    const std::size_t ix = node_ix(node);
    const std::size_t iy = node_iy(node);
    std::vector<NodeId> out;
    out.reserve(4);
    if (ix > 0) {
        out.push_back(node_at(ix - 1, iy));
    }
    if (ix + 1 < nx_) {
        out.push_back(node_at(ix + 1, iy));
    }
    if (iy > 0) {
        out.push_back(node_at(ix, iy - 1));
    }
    if (iy + 1 < ny_) {
        out.push_back(node_at(ix, iy + 1));
    }
    return out;
}

RoadClass RoadNetwork::edge_class(NodeId from, NodeId to) const {
    MCS_CHECK_MSG(from < num_nodes() && to < num_nodes(), "invalid node id");
    const std::size_t fx = node_ix(from);
    const std::size_t fy = node_iy(from);
    const std::size_t tx = node_ix(to);
    const std::size_t ty = node_iy(to);
    const bool horizontal = (fy == ty) && (fx + 1 == tx || tx + 1 == fx);
    const bool vertical = (fx == tx) && (fy + 1 == ty || ty + 1 == fy);
    MCS_CHECK_MSG(horizontal || vertical,
                  "edge_class: nodes are not lattice-adjacent");
    // A horizontal edge lies on grid row fy; a vertical edge on column fx.
    const std::size_t line = horizontal ? fy : fx;
    return is_arterial_line(line) ? RoadClass::kArterial : RoadClass::kLocal;
}

double RoadNetwork::edge_speed_mps(NodeId from, NodeId to) const {
    return edge_class(from, to) == RoadClass::kArterial
               ? config_.arterial_speed_mps
               : config_.local_speed_mps;
}

NodeId RoadNetwork::nearest_node(LocalPoint p) const {
    const auto clamp_index = [](double value, std::size_t count) {
        const long idx = std::lround(value);
        return static_cast<std::size_t>(
            std::clamp<long>(idx, 0, static_cast<long>(count) - 1));
    };
    const std::size_t ix = clamp_index(p.x_m / config_.block_m, nx_);
    const std::size_t iy = clamp_index(p.y_m / config_.block_m, ny_);
    return node_at(ix, iy);
}

double RoadNetwork::euclidean_m(NodeId a, NodeId b) const {
    return Projection::distance_m(position(a), position(b));
}

NodeId RoadNetwork::node_at(std::size_t ix, std::size_t iy) const {
    MCS_CHECK_MSG(ix < nx_ && iy < ny_, "grid index out of range");
    return static_cast<NodeId>(iy * nx_ + ix);
}

std::size_t RoadNetwork::node_ix(NodeId node) const {
    return node % nx_;
}

std::size_t RoadNetwork::node_iy(NodeId node) const {
    return node / nx_;
}

bool RoadNetwork::is_arterial_line(std::size_t index) const {
    return index % config_.arterial_every == 0;
}

}  // namespace mcs
