// Grid road network: the substrate taxis drive on.
//
// SUVnet is a Shanghai taxi trace; we replace it with a synthetic urban grid
// (DESIGN.md §2). Intersections form an nx × ny lattice with configurable
// block size. Every `arterial_every`-th grid line is an arterial road with a
// higher speed limit (the paper's highway-vs-local-road motivation for the
// dynamic tolerance in Eq. 12 depends on this speed heterogeneity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/projection.hpp"

namespace mcs {

/// Index of an intersection in the grid network.
using NodeId = std::uint32_t;

/// Classification of a road segment, determining its speed limit.
enum class RoadClass {
    kLocal,
    kArterial,
};

/// Configuration of the synthetic road grid.
struct RoadNetworkConfig {
    double width_m = 110000.0;     ///< east-west extent (paper: 110 km)
    double height_m = 140000.0;    ///< north-south extent (paper: 140 km)
    double block_m = 1000.0;       ///< intersection spacing
    std::size_t arterial_every = 4;  ///< every k-th grid line is arterial
    double local_speed_mps = 8.33;     ///< ~30 km/h
    double arterial_speed_mps = 16.7;  ///< ~60 km/h
};

/// Immutable grid road network with per-edge speed limits.
class RoadNetwork {
public:
    explicit RoadNetwork(const RoadNetworkConfig& config);

    const RoadNetworkConfig& config() const { return config_; }

    std::size_t num_nodes() const { return nx_ * ny_; }
    std::size_t grid_width() const { return nx_; }
    std::size_t grid_height() const { return ny_; }

    /// Planar position of an intersection (throws on invalid id).
    LocalPoint position(NodeId node) const;

    /// Up to four lattice neighbours of `node`.
    std::vector<NodeId> neighbours(NodeId node) const;

    /// Speed limit on the edge between two adjacent intersections.
    /// Throws mcs::Error if the nodes are not adjacent.
    double edge_speed_mps(NodeId from, NodeId to) const;

    /// Class of the edge between two adjacent intersections.
    RoadClass edge_class(NodeId from, NodeId to) const;

    /// Intersection nearest to an arbitrary planar point (clamped to grid).
    NodeId nearest_node(LocalPoint p) const;

    /// Straight-line distance between two intersections, in metres.
    double euclidean_m(NodeId a, NodeId b) const;

    NodeId node_at(std::size_t ix, std::size_t iy) const;
    std::size_t node_ix(NodeId node) const;
    std::size_t node_iy(NodeId node) const;

private:
    bool is_arterial_line(std::size_t index) const;

    RoadNetworkConfig config_;
    std::size_t nx_;
    std::size_t ny_;
};

}  // namespace mcs
