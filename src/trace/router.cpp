#include "trace/router.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.hpp"

namespace mcs {

Router::Router(const RoadNetwork& network) : network_(network) {}

Route Router::route(NodeId origin, NodeId destination) const {
    MCS_CHECK_MSG(origin < network_.num_nodes() &&
                      destination < network_.num_nodes(),
                  "route: invalid node id");
    if (origin == destination) {
        return {origin};
    }

    const double max_speed = std::max(network_.config().local_speed_mps,
                                      network_.config().arterial_speed_mps);
    const auto heuristic = [&](NodeId node) {
        return network_.euclidean_m(node, destination) / max_speed;
    };

    constexpr double kInf = std::numeric_limits<double>::infinity();
    const NodeId invalid = static_cast<NodeId>(network_.num_nodes());
    std::vector<double> best_cost(network_.num_nodes(), kInf);
    std::vector<NodeId> parent(network_.num_nodes(), invalid);

    struct QueueEntry {
        double priority;  // g + h
        double cost;      // g
        NodeId node;
        bool operator>(const QueueEntry& other) const {
            return priority > other.priority;
        }
    };
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        open;

    best_cost[origin] = 0.0;
    open.push({heuristic(origin), 0.0, origin});

    while (!open.empty()) {
        const QueueEntry entry = open.top();
        open.pop();
        if (entry.cost > best_cost[entry.node]) {
            continue;  // stale entry
        }
        if (entry.node == destination) {
            break;
        }
        for (const NodeId next : network_.neighbours(entry.node)) {
            const double edge_time =
                network_.euclidean_m(entry.node, next) /
                network_.edge_speed_mps(entry.node, next);
            const double cost = entry.cost + edge_time;
            if (cost < best_cost[next]) {
                best_cost[next] = cost;
                parent[next] = entry.node;
                open.push({cost + heuristic(next), cost, next});
            }
        }
    }

    MCS_CHECK_MSG(parent[destination] != invalid,
                  "route: destination unreachable (grid should be connected)");
    Route path;
    for (NodeId node = destination; node != origin; node = parent[node]) {
        path.push_back(node);
    }
    path.push_back(origin);
    std::reverse(path.begin(), path.end());
    return path;
}

double Router::travel_time_s(const Route& route) const {
    double total = 0.0;
    for (std::size_t i = 1; i < route.size(); ++i) {
        total += network_.euclidean_m(route[i - 1], route[i]) /
                 network_.edge_speed_mps(route[i - 1], route[i]);
    }
    return total;
}

double Router::length_m(const Route& route) const {
    double total = 0.0;
    for (std::size_t i = 1; i < route.size(); ++i) {
        total += network_.euclidean_m(route[i - 1], route[i]);
    }
    return total;
}

}  // namespace mcs
