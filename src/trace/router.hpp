// Fastest-path routing over the road network (A* on travel time).
#pragma once

#include <vector>

#include "trace/road_network.hpp"

namespace mcs {

/// A route: a sequence of adjacent intersections, origin first.
using Route = std::vector<NodeId>;

/// A* router minimising travel time, with the straight-line-at-max-speed
/// heuristic (admissible because no edge is faster than the arterial limit).
class Router {
public:
    explicit Router(const RoadNetwork& network);

    /// Fastest route from `origin` to `destination`; both inclusive.
    /// Returns {origin} when origin == destination.
    Route route(NodeId origin, NodeId destination) const;

    /// Total travel time of a route at the speed limits, in seconds.
    double travel_time_s(const Route& route) const;

    /// Total length of a route in metres.
    double length_m(const Route& route) const;

private:
    const RoadNetwork& network_;
};

}  // namespace mcs
