#include "trace/simulator.hpp"

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "trace/router.hpp"

namespace mcs {

TraceDataset simulate_fleet(const SimulatorConfig& config) {
    MCS_CHECK_MSG(config.participants > 0, "simulate_fleet: no participants");
    MCS_CHECK_MSG(config.slots > 0, "simulate_fleet: no slots");
    MCS_CHECK_MSG(config.tau_s > 0.0, "simulate_fleet: tau must be positive");
    MCS_CHECK_MSG(config.integration_step_s > 0.0 &&
                      config.integration_step_s <= config.tau_s,
                  "simulate_fleet: integration step must be in (0, tau]");
    MCS_CHECK_MSG(config.min_speed_factor > 0.0 &&
                      config.max_speed_factor >= config.min_speed_factor,
                  "simulate_fleet: speed factor range invalid");

    const RoadNetwork network(config.network);
    const Router router(network);
    Rng master(config.seed);
    TripGenerator trips(network, router, config.trips, master.split());
    Rng vehicle_rng = master.split();

    std::vector<Vehicle> fleet;
    fleet.reserve(config.participants);
    for (std::size_t i = 0; i < config.participants; ++i) {
        VehicleConfig vc;
        vc.speed_factor = vehicle_rng.uniform(config.min_speed_factor,
                                              config.max_speed_factor);
        fleet.emplace_back(network, trips.random_node(), vc);
    }

    const std::size_t n = config.participants;
    const std::size_t t = config.slots;
    TraceDataset dataset{Matrix(n, t), Matrix(n, t), Matrix(n, t),
                         Matrix(n, t), config.tau_s};

    // Warm-up: let every vehicle start its first trip and drive a little so
    // slot 0 is not a synchronized all-stopped snapshot.
    for (auto& vehicle : fleet) {
        auto trip = trips.next_trip(vehicle.current_node());
        vehicle.assign_route(std::move(trip.route), trip.dwell_s);
    }
    const double warmup_s = 120.0;
    for (double s = 0.0; s < warmup_s; s += config.integration_step_s) {
        for (auto& vehicle : fleet) {
            vehicle.step(config.integration_step_s);
        }
    }

    for (std::size_t j = 0; j < t; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            auto& vehicle = fleet[i];
            if (vehicle.needs_trip()) {
                auto trip = trips.next_trip(vehicle.current_node());
                vehicle.assign_route(std::move(trip.route), trip.dwell_s);
            }
            const VehicleSample s = vehicle.sample();
            dataset.x(i, j) = s.position.x_m;
            dataset.y(i, j) = s.position.y_m;
            dataset.vx(i, j) = s.vx_mps;
            dataset.vy(i, j) = s.vy_mps;
        }
        if (j + 1 < t) {
            const std::size_t steps = static_cast<std::size_t>(
                config.tau_s / config.integration_step_s);
            for (std::size_t k = 0; k < steps; ++k) {
                for (auto& vehicle : fleet) {
                    vehicle.step(config.integration_step_s);
                }
            }
        }
    }

    dataset.validate();
    return dataset;
}

TraceDataset make_paper_scale_dataset(std::uint64_t seed) {
    SimulatorConfig config;
    config.seed = seed;
    // Paper scale: 158 participants x 240 slots, tau = 30 s, 110 x 140 km.
    return simulate_fleet(config);
}

TraceDataset make_small_dataset(std::uint64_t seed, std::size_t participants,
                                std::size_t slots) {
    SimulatorConfig config;
    config.participants = participants;
    config.slots = slots;
    config.seed = seed;
    config.network.width_m = 20000.0;
    config.network.height_m = 20000.0;
    config.network.block_m = 1000.0;
    config.trips.min_trip_m = 1500.0;
    config.trips.max_trip_m = 8000.0;
    return simulate_fleet(config);
}

}  // namespace mcs
