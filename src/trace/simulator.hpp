// Fleet simulator producing SUVnet-like trace datasets.
//
// Orchestrates n vehicles on the road network for t timeslots of duration
// tau, integrating motion at a fine internal step and sampling position and
// instantaneous velocity at each slot boundary — exactly the acquisition
// model of the paper (§II-A: uploads every tau = 30 s, velocity readily
// available on the device).
#pragma once

#include <cstdint>

#include "trace/dataset.hpp"
#include "trace/road_network.hpp"
#include "trace/trip_generator.hpp"
#include "trace/vehicle.hpp"

namespace mcs {

/// Full configuration of a synthetic fleet simulation.
struct SimulatorConfig {
    std::size_t participants = 158;  ///< paper's selected SUVnet subset
    std::size_t slots = 240;         ///< 2 hours at 30 s
    double tau_s = 30.0;
    double integration_step_s = 1.0;
    std::uint64_t seed = 42;

    RoadNetworkConfig network;
    TripConfig trips;

    /// Range of per-vehicle driver speed factors (uniform draw).
    double min_speed_factor = 0.7;
    double max_speed_factor = 1.05;
};

/// Simulate a fleet and return the ground-truth dataset (deterministic for
/// a fixed config, including the seed).
TraceDataset simulate_fleet(const SimulatorConfig& config);

/// Convenience: the paper-scale dataset (158 x 240, tau = 30 s) at a given
/// seed, on a city-scale grid. Used by benches and examples.
TraceDataset make_paper_scale_dataset(std::uint64_t seed);

/// Convenience: a small dataset for unit tests (fast to generate).
TraceDataset make_small_dataset(std::uint64_t seed, std::size_t participants,
                                std::size_t slots);

}  // namespace mcs
