#include "trace/trace_io.hpp"

#include <fstream>
#include <ostream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/format.hpp"

namespace mcs {

void write_trace_csv(std::ostream& out, const TraceDataset& dataset,
                     const Matrix& mask) {
    dataset.validate();
    MCS_CHECK_MSG(mask.rows() == dataset.participants() &&
                      mask.cols() == dataset.slots(),
                  "write_trace_csv: mask shape mismatch");
    out << "participant,slot,x_m,y_m,vx_mps,vy_mps\n";
    for (std::size_t i = 0; i < dataset.participants(); ++i) {
        for (std::size_t j = 0; j < dataset.slots(); ++j) {
            if (mask(i, j) == 0.0) {
                continue;
            }
            out << i << ',' << j << ',' << format_fixed(dataset.x(i, j), 3)
                << ',' << format_fixed(dataset.y(i, j), 3) << ','
                << format_fixed(dataset.vx(i, j), 4) << ','
                << format_fixed(dataset.vy(i, j), 4) << '\n';
        }
    }
}

void write_trace_csv(std::ostream& out, const TraceDataset& dataset) {
    const Matrix all_ones =
        Matrix::constant(dataset.participants(), dataset.slots(), 1.0);
    write_trace_csv(out, dataset, all_ones);
}

void write_trace_csv_file(const std::string& path, const TraceDataset& dataset,
                          const Matrix& mask) {
    std::ofstream out(path);
    MCS_CHECK_MSG(out.good(), "cannot open trace CSV for writing: " + path);
    write_trace_csv(out, dataset, mask);
    MCS_CHECK_MSG(out.good(), "error while writing trace CSV: " + path);
}

ImportedTrace read_trace_csv(std::istream& in, std::size_t participants,
                             std::size_t slots, double tau_s) {
    MCS_CHECK_MSG(participants > 0 && slots > 0,
                  "read_trace_csv: empty shape");
    const CsvDocument doc = read_csv(in, /*has_header=*/true);
    const std::size_t col_participant = doc.column_index("participant");
    const std::size_t col_slot = doc.column_index("slot");
    const std::size_t col_x = doc.column_index("x_m");
    const std::size_t col_y = doc.column_index("y_m");
    const std::size_t col_vx = doc.column_index("vx_mps");
    const std::size_t col_vy = doc.column_index("vy_mps");

    ImportedTrace out;
    out.dataset.x = Matrix(participants, slots);
    out.dataset.y = Matrix(participants, slots);
    out.dataset.vx = Matrix(participants, slots);
    out.dataset.vy = Matrix(participants, slots);
    out.dataset.tau_s = tau_s;
    out.existence = Matrix(participants, slots);

    for (const auto& row : doc.rows) {
        MCS_CHECK_MSG(row.size() >= 6, "read_trace_csv: short record");
        const long i = parse_long(row[col_participant]);
        const long j = parse_long(row[col_slot]);
        MCS_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < participants,
                      "read_trace_csv: participant index out of range");
        MCS_CHECK_MSG(j >= 0 && static_cast<std::size_t>(j) < slots,
                      "read_trace_csv: slot index out of range");
        const auto ui = static_cast<std::size_t>(i);
        const auto uj = static_cast<std::size_t>(j);
        MCS_CHECK_MSG(out.existence(ui, uj) == 0.0,
                      "read_trace_csv: duplicate cell (" + row[0] + "," +
                          row[1] + ")");
        out.existence(ui, uj) = 1.0;
        out.dataset.x(ui, uj) = parse_double(row[col_x]);
        out.dataset.y(ui, uj) = parse_double(row[col_y]);
        out.dataset.vx(ui, uj) = parse_double(row[col_vx]);
        out.dataset.vy(ui, uj) = parse_double(row[col_vy]);
    }
    out.dataset.validate();
    return out;
}

ImportedTrace read_trace_csv_file(const std::string& path,
                                  std::size_t participants, std::size_t slots,
                                  double tau_s) {
    std::ifstream in(path);
    MCS_CHECK_MSG(in.good(), "cannot open trace CSV for reading: " + path);
    return read_trace_csv(in, participants, slots, tau_s);
}

}  // namespace mcs
