// CSV import/export of trace datasets.
//
// Long format, one record per (participant, slot) observation:
//   participant,slot,x_m,y_m,vx_mps,vy_mps
// Missing observations may simply be absent from the file (the importer
// fills an existence mask). This is the interchange format used by the
// fleet_cleaning example.
#pragma once

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"
#include "trace/dataset.hpp"

namespace mcs {

/// A dataset read from CSV: matrices plus the observed/missing mask
/// (1 = present in the file, 0 = absent; absent entries are 0 in x/y/vx/vy).
struct ImportedTrace {
    TraceDataset dataset;
    Matrix existence;  ///< n x t, 1 where a record existed
};

/// Write all (i, j) cells where mask(i,j) == 1; pass an all-ones mask (or
/// use the overload) to export a complete dataset.
void write_trace_csv(std::ostream& out, const TraceDataset& dataset,
                     const Matrix& mask);
void write_trace_csv(std::ostream& out, const TraceDataset& dataset);
void write_trace_csv_file(const std::string& path, const TraceDataset& dataset,
                          const Matrix& mask);

/// Read a long-format trace CSV. `participants`/`slots` fix the matrix
/// shape; records outside the shape or duplicated cells throw mcs::Error.
ImportedTrace read_trace_csv(std::istream& in, std::size_t participants,
                             std::size_t slots, double tau_s);
ImportedTrace read_trace_csv_file(const std::string& path,
                                  std::size_t participants, std::size_t slots,
                                  double tau_s);

}  // namespace mcs
