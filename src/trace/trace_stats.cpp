#include "trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "linalg/svd.hpp"

namespace mcs {

SingularEnergyCurve singular_energy_curve(const Matrix& coordinate_matrix) {
    const SvdResult decomposition = svd(coordinate_matrix);
    const std::vector<double> cdf =
        singular_energy_cdf(decomposition.singular_values);
    SingularEnergyCurve curve;
    const auto k = static_cast<double>(cdf.size());
    curve.normalized_index.reserve(cdf.size());
    curve.cumulative_energy = cdf;
    for (std::size_t i = 0; i < cdf.size(); ++i) {
        curve.normalized_index.push_back(static_cast<double>(i + 1) / k);
    }
    return curve;
}

double energy_fraction_needed(const SingularEnergyCurve& curve,
                              double energy) {
    MCS_CHECK_MSG(energy >= 0.0 && energy <= 1.0,
                  "energy_fraction_needed: energy out of [0,1]");
    for (std::size_t i = 0; i < curve.cumulative_energy.size(); ++i) {
        if (curve.cumulative_energy[i] >= energy) {
            return curve.normalized_index[i];
        }
    }
    return 1.0;
}

std::vector<double> temporal_deltas(const Matrix& m) {
    std::vector<double> deltas;
    deltas.reserve(m.rows() * (m.cols() - 1));
    for (std::size_t i = 0; i < m.rows(); ++i) {
        for (std::size_t j = 1; j < m.cols(); ++j) {
            deltas.push_back(std::abs(m(i, j) - m(i, j - 1)));
        }
    }
    return deltas;
}

std::vector<double> velocity_improved_deltas(const Matrix& m,
                                             const Matrix& avg_velocity,
                                             double tau_s) {
    MCS_CHECK_MSG(avg_velocity.rows() == m.rows() &&
                      avg_velocity.cols() == m.cols(),
                  "velocity_improved_deltas: shape mismatch");
    MCS_CHECK_MSG(tau_s > 0.0, "velocity_improved_deltas: tau must be > 0");
    std::vector<double> deltas;
    deltas.reserve(m.rows() * (m.cols() - 1));
    for (std::size_t i = 0; i < m.rows(); ++i) {
        for (std::size_t j = 1; j < m.cols(); ++j) {
            const double displacement = std::abs(m(i, j) - m(i, j - 1));
            deltas.push_back(
                std::abs(displacement -
                         std::abs(avg_velocity(i, j)) * tau_s));
        }
    }
    return deltas;
}

DeltaQuantiles delta_quantiles(const Matrix& coordinate_matrix,
                               const Matrix& instantaneous_velocity,
                               double tau_s, double quantile_p) {
    const Matrix avg = average_velocity(instantaneous_velocity);
    const std::vector<double> plain = temporal_deltas(coordinate_matrix);
    const std::vector<double> improved =
        velocity_improved_deltas(coordinate_matrix, avg, tau_s);
    return {quantile(plain, quantile_p), quantile(improved, quantile_p)};
}

}  // namespace mcs
