// Structural statistics of a trace dataset — the quantities the paper uses
// to justify its design (Fig. 4): the singular-energy distribution showing
// low rank, and the temporal-stability deltas with/without velocity.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/stats.hpp"
#include "trace/dataset.hpp"

namespace mcs {

/// Fig. 4(a): cumulative singular-energy CDF of a coordinate matrix,
/// indexed by normalised singular-value position k / min(n, t).
struct SingularEnergyCurve {
    std::vector<double> normalized_index;  ///< (k+1)/min(n,t), k = 0..
    std::vector<double> cumulative_energy; ///< Σ_{i<=k} σᵢ / Σᵢ σᵢ
};
SingularEnergyCurve singular_energy_curve(const Matrix& coordinate_matrix);

/// Fraction of singular values needed to capture `energy` (e.g. 0.95) of the
/// total — the "top 9% of singular values hold 95% of the energy" statistic.
double energy_fraction_needed(const SingularEnergyCurve& curve, double energy);

/// |x(i,j) − x(i,j−1)| for all i, j >= 1 (Eq. 21), flattened.
std::vector<double> temporal_deltas(const Matrix& coordinate_matrix);

/// | |x(i,j) − x(i,j−1)| − V̄(i,j)·τ | for all i, j >= 1 (Eq. 22, magnitudes),
/// flattened. `avg_velocity` is the Eq. (11) matrix for the same axis.
std::vector<double> velocity_improved_deltas(const Matrix& coordinate_matrix,
                                             const Matrix& avg_velocity,
                                             double tau_s);

/// Summary row used by the Fig. 4(b) bench: the p-quantile of both delta
/// distributions for one axis.
struct DeltaQuantiles {
    double plain;
    double velocity_improved;
};
DeltaQuantiles delta_quantiles(const Matrix& coordinate_matrix,
                               const Matrix& instantaneous_velocity,
                               double tau_s, double quantile_p);

}  // namespace mcs
