#include "trace/trip_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace mcs {

TripGenerator::TripGenerator(const RoadNetwork& network, const Router& router,
                             TripConfig config, Rng rng)
    : network_(network), router_(router), config_(config), rng_(rng) {
    MCS_CHECK_MSG(config.min_trip_m > 0.0 &&
                      config.max_trip_m >= config.min_trip_m,
                  "trip length bounds invalid");
    MCS_CHECK_MSG(config.mean_dwell_s >= 0.0, "mean dwell must be >= 0");
}

NodeId TripGenerator::random_node() {
    return static_cast<NodeId>(rng_.uniform_int(
        0, static_cast<std::int64_t>(network_.num_nodes()) - 1));
}

NodeId TripGenerator::pick_destination(NodeId from) {
    const LocalPoint origin = network_.position(from);
    for (std::size_t attempt = 0;
         attempt < config_.max_destination_attempts; ++attempt) {
        // Uniform direction, uniform radius within the trip ring.
        const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
        const double radius =
            rng_.uniform(config_.min_trip_m, config_.max_trip_m);
        const LocalPoint target{origin.x_m + radius * std::cos(angle),
                                origin.y_m + radius * std::sin(angle)};
        const NodeId candidate = network_.nearest_node(target);
        // nearest_node clamps to the grid; re-check the distance constraint.
        if (candidate != from &&
            network_.euclidean_m(from, candidate) >= config_.min_trip_m) {
            return candidate;
        }
    }
    // Corner case (vehicle wedged in a grid corner with a tight ring):
    // fall back to any sufficiently distant random node.
    for (;;) {
        const NodeId candidate = random_node();
        if (candidate != from) {
            return candidate;
        }
    }
}

TripGenerator::Trip TripGenerator::next_trip(NodeId from) {
    const NodeId destination = pick_destination(from);
    Trip trip;
    trip.route = router_.route(from, destination);
    trip.dwell_s = config_.mean_dwell_s > 0.0
                       ? rng_.exponential(1.0 / config_.mean_dwell_s)
                       : 0.0;
    return trip;
}

}  // namespace mcs
