// Taxi trip generation: destination choice and dwell times.
//
// Taxis alternate between driving a fare to a destination and dwelling
// (pickup / waiting). Destinations are drawn from a bounded ring around the
// current position — matching how real taxi fleets stay inside a working
// area rather than teleporting across the whole city — with exponentially
// distributed dwell times.
#pragma once

#include "common/rng.hpp"
#include "trace/road_network.hpp"
#include "trace/router.hpp"

namespace mcs {

/// Parameters controlling trip generation.
struct TripConfig {
    double min_trip_m = 2000.0;   ///< minimum straight-line trip length
    double max_trip_m = 15000.0;  ///< maximum straight-line trip length
    double mean_dwell_s = 150.0;   ///< mean exponential dwell after arriving
    std::size_t max_destination_attempts = 64;
};

/// Draws trips for vehicles that have gone idle.
class TripGenerator {
public:
    TripGenerator(const RoadNetwork& network, const Router& router,
                  TripConfig config, Rng rng);

    /// Next route starting at `from`, together with the post-arrival dwell.
    struct Trip {
        Route route;
        double dwell_s;
    };
    Trip next_trip(NodeId from);

    /// A uniformly random intersection, for initial vehicle placement.
    NodeId random_node();

private:
    NodeId pick_destination(NodeId from);

    const RoadNetwork& network_;
    const Router& router_;
    TripConfig config_;
    Rng rng_;
};

}  // namespace mcs
