#include "trace/vehicle.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mcs {

Vehicle::Vehicle(const RoadNetwork& network, NodeId start,
                 VehicleConfig config)
    : network_(network), config_(config), current_node_(start) {
    MCS_CHECK_MSG(start < network.num_nodes(), "vehicle start node invalid");
    MCS_CHECK_MSG(config.accel_mps2 > 0.0 && config.brake_mps2 > 0.0,
                  "vehicle accel/brake must be positive");
    MCS_CHECK_MSG(config.speed_factor > 0.0,
                  "vehicle speed factor must be positive");
}

bool Vehicle::needs_trip() const {
    return route_.empty() && dwell_remaining_s_ <= 0.0;
}

void Vehicle::assign_route(Route route, double dwell_after_s) {
    MCS_CHECK_MSG(!route.empty(), "assign_route: empty route");
    MCS_CHECK_MSG(route.front() == current_node_,
                  "assign_route: route must start at the current node");
    MCS_CHECK_MSG(dwell_after_s >= 0.0, "assign_route: negative dwell");
    if (route.size() == 1) {
        // Degenerate trip: stay put and dwell.
        route_.clear();
        dwell_remaining_s_ = dwell_after_s;
        return;
    }
    route_ = std::move(route);
    segment_ = 0;
    offset_m_ = 0.0;
    dwell_after_route_s_ = dwell_after_s;
}

double Vehicle::current_speed_limit() const {
    if (route_.empty()) {
        return 0.0;
    }
    return network_.edge_speed_mps(route_[segment_], route_[segment_ + 1]) *
           config_.speed_factor;
}

double Vehicle::remaining_route_distance() const {
    if (route_.empty()) {
        return 0.0;
    }
    double remaining =
        network_.euclidean_m(route_[segment_], route_[segment_ + 1]) -
        offset_m_;
    for (std::size_t s = segment_ + 1; s + 1 < route_.size(); ++s) {
        remaining += network_.euclidean_m(route_[s], route_[s + 1]);
    }
    return remaining;
}

void Vehicle::advance_distance(double distance) {
    while (distance > 0.0 && !route_.empty()) {
        const double segment_length =
            network_.euclidean_m(route_[segment_], route_[segment_ + 1]);
        const double segment_remaining = segment_length - offset_m_;
        if (distance < segment_remaining) {
            offset_m_ += distance;
            return;
        }
        distance -= segment_remaining;
        ++segment_;
        offset_m_ = 0.0;
        if (segment_ + 1 >= route_.size()) {
            // Arrived: become dwelling at the destination.
            current_node_ = route_.back();
            route_.clear();
            speed_mps_ = 0.0;
            dwell_remaining_s_ = dwell_after_route_s_;
            return;
        }
    }
}

void Vehicle::step(double dt) {
    MCS_CHECK_MSG(dt > 0.0, "step: dt must be positive");
    if (dwell_remaining_s_ > 0.0) {
        dwell_remaining_s_ = std::max(0.0, dwell_remaining_s_ - dt);
        speed_mps_ = 0.0;
        return;
    }
    if (route_.empty()) {
        speed_mps_ = 0.0;
        return;  // idle, waiting for a trip
    }

    // Target speed: the edge limit, except when close enough to the route
    // end that braking must begin (v^2 / 2b >= remaining distance).
    const double limit = current_speed_limit();
    const double remaining = remaining_route_distance();
    const double braking_speed =
        std::sqrt(std::max(0.0, 2.0 * config_.brake_mps2 * remaining));
    const double target = std::min(limit, braking_speed);

    if (speed_mps_ < target) {
        speed_mps_ =
            std::min(target, speed_mps_ + config_.accel_mps2 * dt);
    } else {
        speed_mps_ =
            std::max(target, speed_mps_ - config_.brake_mps2 * dt);
    }
    // Keep a minimal crawl so the vehicle always reaches the destination.
    const double effective_speed = std::max(speed_mps_, 0.5);
    advance_distance(effective_speed * dt);
}

VehicleSample Vehicle::sample() const {
    if (route_.empty()) {
        const LocalPoint p = network_.position(current_node_);
        return {p, 0.0, 0.0, 0.0};
    }
    const LocalPoint from = network_.position(route_[segment_]);
    const LocalPoint to = network_.position(route_[segment_ + 1]);
    const double segment_length = Projection::distance_m(from, to);
    const double fraction =
        segment_length > 0.0 ? offset_m_ / segment_length : 0.0;
    const LocalPoint position{from.x_m + fraction * (to.x_m - from.x_m),
                              from.y_m + fraction * (to.y_m - from.y_m)};
    double ux = 0.0;
    double uy = 0.0;
    if (segment_length > 0.0) {
        ux = (to.x_m - from.x_m) / segment_length;
        uy = (to.y_m - from.y_m) / segment_length;
    }
    return {position, speed_mps_ * ux, speed_mps_ * uy, speed_mps_};
}

}  // namespace mcs
