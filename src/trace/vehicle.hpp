// Kinematic vehicle model driving along routed polylines.
//
// Motion is integrated with bounded acceleration towards the per-edge speed
// limit (scaled by a per-vehicle driver factor), with braking so the vehicle
// comes to rest at the route end. This yields piecewise-smooth trajectories
// whose velocity matches displacement — the two properties the I(TS,CS)
// algorithm exploits (low-rank coordinate matrices, velocity-consistent
// temporal differences).
#pragma once

#include "trace/road_network.hpp"
#include "trace/router.hpp"

namespace mcs {

/// Per-vehicle motion parameters.
struct VehicleConfig {
    double accel_mps2 = 2.0;     ///< max acceleration
    double brake_mps2 = 3.0;     ///< max (comfortable) deceleration
    double speed_factor = 1.0;   ///< driver-specific multiple of the limit
};

/// Instantaneous kinematic state sampled by the simulator.
struct VehicleSample {
    LocalPoint position;
    double vx_mps;
    double vy_mps;
    double speed_mps;
};

/// A single vehicle following assigned routes with dwell stops in between.
class Vehicle {
public:
    Vehicle(const RoadNetwork& network, NodeId start, VehicleConfig config);

    /// True when the vehicle has finished its route and its dwell, and is
    /// waiting for the trip generator to assign the next trip.
    bool needs_trip() const;

    /// Assign a new route (must start at the vehicle's current node) and the
    /// dwell duration to observe after arriving.
    void assign_route(Route route, double dwell_after_s);

    /// Advance the simulation by dt seconds (dt > 0).
    void step(double dt);

    /// Current kinematic state.
    VehicleSample sample() const;

    /// Node the vehicle occupies when idle (route origin / last arrival).
    NodeId current_node() const { return current_node_; }

private:
    double current_speed_limit() const;
    double remaining_route_distance() const;
    void advance_distance(double distance);

    const RoadNetwork& network_;
    VehicleConfig config_;

    Route route_;               // active route; empty when idle/dwelling
    std::size_t segment_ = 0;   // index into route_ of the segment origin
    double offset_m_ = 0.0;     // distance travelled along current segment
    double speed_mps_ = 0.0;
    double dwell_remaining_s_ = 0.0;
    double dwell_after_route_s_ = 0.0;  // dwell to start once route completes
    NodeId current_node_;
};

}  // namespace mcs
