// Unit tests for the CSV reader/writer.
#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace mcs {
namespace {

TEST(Csv, ParsesSimpleRowsWithHeader) {
    std::istringstream in("a,b,c\n1,2,3\n4,5,6\n");
    const CsvDocument doc = read_csv(in, /*has_header=*/true);
    ASSERT_EQ(doc.header.size(), 3u);
    EXPECT_EQ(doc.header[0], "a");
    ASSERT_EQ(doc.rows.size(), 2u);
    EXPECT_EQ(doc.rows[0][1], "2");
    EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(Csv, ParsesWithoutHeader) {
    std::istringstream in("1,2\n3,4\n");
    const CsvDocument doc = read_csv(in, /*has_header=*/false);
    EXPECT_TRUE(doc.header.empty());
    ASSERT_EQ(doc.rows.size(), 2u);
}

TEST(Csv, HandlesQuotedFields) {
    std::istringstream in("name,note\nalice,\"hello, world\"\n");
    const CsvDocument doc = read_csv(in, true);
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0][1], "hello, world");
}

TEST(Csv, HandlesEscapedQuotes) {
    std::istringstream in("v\n\"say \"\"hi\"\"\"\n");
    const CsvDocument doc = read_csv(in, true);
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0][0], "say \"hi\"");
}

TEST(Csv, HandlesQuotedNewline) {
    std::istringstream in("v\n\"line1\nline2\"\n");
    const CsvDocument doc = read_csv(in, true);
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(Csv, HandlesCrLf) {
    std::istringstream in("a,b\r\n1,2\r\n");
    const CsvDocument doc = read_csv(in, true);
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0][0], "1");
    EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, SkipsBlankLines) {
    std::istringstream in("a\n1\n\n2\n");
    const CsvDocument doc = read_csv(in, true);
    EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(Csv, PreservesEmptyFields) {
    std::istringstream in("a,b,c\n1,,3\n");
    const CsvDocument doc = read_csv(in, true);
    ASSERT_EQ(doc.rows[0].size(), 3u);
    EXPECT_EQ(doc.rows[0][1], "");
}

TEST(Csv, ColumnIndexLookup) {
    std::istringstream in("x,y,z\n1,2,3\n");
    const CsvDocument doc = read_csv(in, true);
    EXPECT_EQ(doc.column_index("y"), 1u);
    EXPECT_THROW(doc.column_index("missing"), Error);
}

TEST(Csv, EscapePassesPlainFieldsThrough) {
    EXPECT_EQ(csv_escape("plain"), "plain");
}

TEST(Csv, EscapeQuotesSpecialFields) {
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
    EXPECT_EQ(csv_escape("nl\n"), "\"nl\n\"");
}

TEST(Csv, RoundTripThroughWriteAndRead) {
    CsvDocument doc;
    doc.header = {"id", "text"};
    doc.rows = {{"1", "simple"}, {"2", "with, comma"}, {"3", "with \"q\""}};
    std::ostringstream out;
    write_csv(out, doc);
    std::istringstream in(out.str());
    const CsvDocument parsed = read_csv(in, true);
    EXPECT_EQ(parsed.header, doc.header);
    ASSERT_EQ(parsed.rows.size(), doc.rows.size());
    for (std::size_t i = 0; i < doc.rows.size(); ++i) {
        EXPECT_EQ(parsed.rows[i], doc.rows[i]) << "row " << i;
    }
}

TEST(Csv, CustomDelimiter) {
    std::istringstream in("a;b\n1;2\n");
    const CsvDocument doc = read_csv(in, true, ';');
    EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, ReadMissingFileThrows) {
    EXPECT_THROW(read_csv_file("/nonexistent/file.csv", true), Error);
}

}  // namespace
}  // namespace mcs
