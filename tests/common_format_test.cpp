// Unit tests for formatting helpers and the stopwatch.
#include "common/format.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/stopwatch.hpp"

namespace mcs {
namespace {

TEST(Format, FixedPrecision) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(2.0, 0), "2");
    EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(Format, Percent) {
    EXPECT_EQ(format_percent(0.954), "95.4%");
    EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Format, Padding) {
    EXPECT_EQ(pad_left("ab", 4), "  ab");
    EXPECT_EQ(pad_right("ab", 4), "ab  ");
    EXPECT_EQ(pad_left("abcd", 2), "abcd");
    EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Format, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Format, Split) {
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Format, SplitNoDelimiter) {
    const auto parts = split("plain", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "plain");
}

TEST(Format, ParseDouble) {
    EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
    EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
    EXPECT_THROW(parse_double("abc"), Error);
    EXPECT_THROW(parse_double("1.5x"), Error);
    EXPECT_THROW(parse_double(""), Error);
}

TEST(Format, ParseLong) {
    EXPECT_EQ(parse_long("42"), 42);
    EXPECT_EQ(parse_long("-7"), -7);
    EXPECT_THROW(parse_long("4.2"), Error);
    EXPECT_THROW(parse_long(""), Error);
}

TEST(Stopwatch, MeasuresElapsedTime) {
    Stopwatch sw;
    // Busy-wait a short, measurable interval.
    volatile double sink = 0.0;
    while (sw.elapsed_ms() < 5.0) {
        sink += 1.0;
    }
    EXPECT_GE(sw.elapsed_seconds(), 0.005);
    sw.restart();
    EXPECT_LT(sw.elapsed_ms(), 5.0);
}

TEST(Format, EditDistance) {
    EXPECT_EQ(edit_distance("", ""), 0u);
    EXPECT_EQ(edit_distance("abc", ""), 3u);
    EXPECT_EQ(edit_distance("", "abc"), 3u);
    EXPECT_EQ(edit_distance("collude", "collude"), 0u);
    EXPECT_EQ(edit_distance("colude", "collude"), 1u);   // insertion
    EXPECT_EQ(edit_distance("colludee", "collude"), 1u); // deletion
    EXPECT_EQ(edit_distance("collide", "collude"), 1u);  // substitution
    EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
}

TEST(Format, NearestCandidatePicksWithinThreshold) {
    const std::vector<std::string> keys = {"collude", "outage", "replay",
                                           "seed"};
    EXPECT_EQ(nearest_candidate("colude", keys), "collude");
    EXPECT_EQ(nearest_candidate("outge", keys), "outage");
    EXPECT_EQ(nearest_candidate("sede", keys), "seed");
    // Too far from everything: no suggestion rather than a wild guess.
    EXPECT_EQ(nearest_candidate("zzzzzzzz", keys), "");
    EXPECT_EQ(nearest_candidate("x", {}), "");
}

}  // namespace
}  // namespace mcs
