// Unit tests for the JSON parser/serialiser.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mcs {
namespace {

TEST(Json, DefaultIsNull) {
    const Json j;
    EXPECT_TRUE(j.is_null());
    EXPECT_EQ(j.dump(), "null");
}

TEST(Json, Scalars) {
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(2.5).dump(), "2.5");
    EXPECT_EQ(Json(-3).dump(), "-3");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
    const Json j(1.5);
    EXPECT_DOUBLE_EQ(j.as_number(), 1.5);
    EXPECT_THROW(j.as_bool(), Error);
    EXPECT_THROW(j.as_string(), Error);
    EXPECT_THROW(j.at("k"), Error);
    EXPECT_THROW(j.at(std::size_t{0}), Error);
}

TEST(Json, ArrayBuildAndAccess) {
    Json a = Json::array();
    a.push_back(1);
    a.push_back("two");
    a.push_back(Json::array());
    EXPECT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a.at(std::size_t{0}).as_number(), 1.0);
    EXPECT_EQ(a.at(1).as_string(), "two");
    EXPECT_THROW(a.at(3), Error);
    EXPECT_EQ(a.dump(), "[1,\"two\",[]]");
}

TEST(Json, ObjectPreservesInsertionOrder) {
    Json o = Json::object();
    o["zeta"] = 1;
    o["alpha"] = 2;
    o["mid"] = 3;
    ASSERT_EQ(o.keys().size(), 3u);
    EXPECT_EQ(o.keys()[0], "zeta");
    EXPECT_EQ(o.keys()[2], "mid");
    EXPECT_EQ(o.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, ObjectAutovivifiesFromNull) {
    Json j;  // null
    j["key"] = "value";
    EXPECT_TRUE(j.is_object());
    EXPECT_EQ(j.at("key").as_string(), "value");
    EXPECT_TRUE(j.contains("key"));
    EXPECT_FALSE(j.contains("other"));
    EXPECT_THROW(j.at("other"), Error);
}

TEST(Json, DefaultedLookups) {
    Json o = Json::object();
    o["present"] = 7;
    EXPECT_DOUBLE_EQ(o.number_or("present", 1.0), 7.0);
    EXPECT_DOUBLE_EQ(o.number_or("absent", 1.0), 1.0);
    EXPECT_TRUE(o.bool_or("absent", true));
    EXPECT_EQ(o.string_or("absent", "d"), "d");
}

TEST(Json, StringEscaping) {
    const Json j("line\n\"quoted\"\\tab\t");
    const std::string dumped = j.dump();
    EXPECT_EQ(dumped, "\"line\\n\\\"quoted\\\"\\\\tab\\t\"");
    EXPECT_EQ(Json::parse(dumped).as_string(), j.as_string());
}

TEST(Json, PrettyPrint) {
    Json o = Json::object();
    o["a"] = 1;
    Json arr = Json::array();
    arr.push_back(2);
    o["b"] = arr;
    EXPECT_EQ(o.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, ParseScalars) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_TRUE(Json::parse(" true ").as_bool());
    EXPECT_FALSE(Json::parse("false").as_bool());
    EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
    EXPECT_EQ(Json::parse("\"s\"").as_string(), "s");
}

TEST(Json, ParseNested) {
    const Json j = Json::parse(
        R"({"name":"run1","params":{"alpha":0.2,"tags":["a","b"]},"ok":true})");
    EXPECT_EQ(j.at("name").as_string(), "run1");
    EXPECT_DOUBLE_EQ(j.at("params").at("alpha").as_number(), 0.2);
    EXPECT_EQ(j.at("params").at("tags").at(1).as_string(), "b");
    EXPECT_TRUE(j.at("ok").as_bool());
}

TEST(Json, ParseUnicodeEscapes) {
    EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
    EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
    EXPECT_EQ(Json::parse("\"\\u20ac\"").as_string(),
              "\xe2\x82\xac");  // €
}

TEST(Json, ParseRejectsMalformedInput) {
    EXPECT_THROW(Json::parse(""), Error);
    EXPECT_THROW(Json::parse("{"), Error);
    EXPECT_THROW(Json::parse("[1,]"), Error);
    EXPECT_THROW(Json::parse("{\"a\":}"), Error);
    EXPECT_THROW(Json::parse("\"unterminated"), Error);
    EXPECT_THROW(Json::parse("truefalse"), Error);
    EXPECT_THROW(Json::parse("1 2"), Error);
    EXPECT_THROW(Json::parse("nul"), Error);
    EXPECT_THROW(Json::parse("1.2.3"), Error);
}

TEST(Json, RoundTripProperty) {
    Json o = Json::object();
    o["numbers"] = Json::array();
    for (int k = 0; k < 10; ++k) {
        o["numbers"].push_back(k * 0.1);
    }
    o["nested"] = Json::object();
    o["nested"]["deep"] = Json::array();
    o["nested"]["deep"].push_back("x");
    o["nested"]["flag"] = false;
    const Json reparsed = Json::parse(o.dump());
    EXPECT_TRUE(reparsed == o);
    const Json reparsed_pretty = Json::parse(o.dump(4));
    EXPECT_TRUE(reparsed_pretty == o);
}

TEST(Json, FileRoundTrip) {
    Json o = Json::object();
    o["experiment"] = "itscs";
    o["precision"] = 0.985;
    const std::string path = "/tmp/mcs_json_test.json";
    write_json_file(path, o);
    const Json loaded = read_json_file(path);
    EXPECT_TRUE(loaded == o);
    EXPECT_THROW(read_json_file("/nonexistent/x.json"), Error);
}

TEST(Json, NanRejectedOnDump) {
    const Json j(std::nan(""));
    EXPECT_THROW(j.dump(), Error);
}

// Property: randomly generated documents survive dump -> parse intact,
// both compact and pretty-printed.
class JsonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

namespace {
Json random_json(Rng& rng, int depth) {
    const int kind = static_cast<int>(rng.uniform_int(0, depth > 2 ? 3 : 5));
    switch (kind) {
        case 0:
            return Json();
        case 1:
            return Json(rng.bernoulli(0.5));
        case 2:
            return Json(rng.uniform(-1e6, 1e6));
        case 3: {
            std::string s;
            const auto len = rng.uniform_int(0, 12);
            for (int k = 0; k < len; ++k) {
                s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
            }
            return Json(s);
        }
        case 4: {
            Json a = Json::array();
            const auto len = rng.uniform_int(0, 4);
            for (int k = 0; k < len; ++k) {
                a.push_back(random_json(rng, depth + 1));
            }
            return a;
        }
        default: {
            Json o = Json::object();
            const auto len = rng.uniform_int(0, 4);
            for (int k = 0; k < len; ++k) {
                o["k" + std::to_string(k)] = random_json(rng, depth + 1);
            }
            return o;
        }
    }
}
}  // namespace

TEST_P(JsonRoundTrip, DumpParseIdentity) {
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        const Json document = random_json(rng, 0);
        EXPECT_TRUE(Json::parse(document.dump()) == document);
        EXPECT_TRUE(Json::parse(document.dump(2)) == document);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace mcs
