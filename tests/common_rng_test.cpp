// Unit and statistical property tests for mcs::Rng.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.hpp"

namespace mcs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance) {
    Rng rng(11);
    const int n = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        sum += u;
        sum_sq += u * u;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-5.0, 3.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformRangeRejectsInvertedBounds) {
    Rng rng(3);
    EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniform_int(2, 6);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
    Rng rng(5);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(rng.uniform_int(42, 42), 42);
    }
}

TEST(Rng, UniformIntUnbiased) {
    Rng rng(17);
    const int buckets = 7;
    std::vector<int> counts(buckets, 0);
    const int n = 70000;
    for (int i = 0; i < n; ++i) {
        ++counts[static_cast<std::size_t>(rng.uniform_int(0, buckets - 1))];
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), n / 7.0, 500.0);
    }
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(23);
    const int n = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal();
        sum += z;
        sum_sq += z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
    Rng rng(29);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += rng.normal(10.0, 2.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
    Rng rng(29);
    EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
    EXPECT_THROW(rng.bernoulli(1.5), Error);
}

TEST(Rng, ExponentialMean) {
    Rng rng(37);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(0.5);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
    Rng parent(41);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    // Streams should differ from each other and from the parent.
    EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(43);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
    Rng rng(47);
    const auto sample = rng.sample_without_replacement(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (const std::size_t s : sample) {
        EXPECT_LT(s, 100u);
    }
}

TEST(Rng, SampleWithoutReplacementFull) {
    Rng rng(47);
    const auto sample = rng.sample_without_replacement(10, 10);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
    Rng rng(47);
    EXPECT_THROW(rng.sample_without_replacement(5, 6), Error);
}

TEST(Rng, SampleWithoutReplacementUniformCoverage) {
    // Each index should be picked with probability k/n.
    Rng rng(53);
    std::vector<int> counts(20, 0);
    const int trials = 20000;
    for (int tr = 0; tr < trials; ++tr) {
        for (const std::size_t s : rng.sample_without_replacement(20, 5)) {
            ++counts[s];
        }
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), trials * 0.25, 300.0);
    }
}

}  // namespace
}  // namespace mcs
