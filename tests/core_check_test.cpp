// Tests for the CHECK phase (Algorithm 3).
#include "core/check_phase.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace mcs {
namespace {

CheckConfig config_100_500() {
    CheckConfig config;
    config.lower_m = 100.0;
    config.upper_m = 500.0;
    return config;
}

TEST(Check, ClearsFlagWhenCloseToReconstruction) {
    const Matrix s{{1000.0}};
    const Matrix reconstructed{{1050.0}};  // 50 m deviation < 100
    Matrix detection{{1.0}};
    const Matrix existence{{1.0}};
    const Matrix out = check_axis(s, reconstructed, detection, existence,
                                  config_100_500());
    EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
}

TEST(Check, RaisesFlagWhenFarFromReconstruction) {
    const Matrix s{{1000.0}};
    const Matrix reconstructed{{2000.0}};  // 1000 m > 500
    Matrix detection{{0.0}};
    const Matrix existence{{1.0}};
    const Matrix out = check_axis(s, reconstructed, detection, existence,
                                  config_100_500());
    EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
}

TEST(Check, HysteresisKeepsStateBetweenThresholds) {
    // 300 m deviation: between lower (100) and upper (500) — flag sticks.
    const Matrix s{{1000.0, 1000.0}};
    const Matrix reconstructed{{1300.0, 1300.0}};
    Matrix detection{{1.0, 0.0}};
    const Matrix existence{{1.0, 1.0}};
    const Matrix out = check_axis(s, reconstructed, detection, existence,
                                  config_100_500());
    EXPECT_DOUBLE_EQ(out(0, 0), 1.0);  // stays flagged
    EXPECT_DOUBLE_EQ(out(0, 1), 0.0);  // stays clear
}

TEST(Check, SkipsMissingCells) {
    // A missing cell holds placeholder 0; its |S − Ŝ| is meaningless and
    // must not raise the flag.
    const Matrix s{{0.0}};
    const Matrix reconstructed{{5000.0}};
    Matrix detection{{0.0}};
    const Matrix existence{{0.0}};
    const Matrix out = check_axis(s, reconstructed, detection, existence,
                                  config_100_500());
    EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
}

TEST(Check, ExactThresholdsAreExclusive) {
    // Algorithm 3 uses strict comparisons: exactly lower / exactly upper
    // keep the current state.
    const Matrix s{{0.0, 0.0}};
    const Matrix reconstructed{{100.0, 500.0}};
    Matrix detection{{1.0, 0.0}};
    const Matrix existence{{1.0, 1.0}};
    const Matrix out = check_axis(s, reconstructed, detection, existence,
                                  config_100_500());
    EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
}

TEST(Check, Validation) {
    const Matrix m(2, 2);
    const Matrix ones = Matrix::constant(2, 2, 1.0);
    CheckConfig bad;
    bad.lower_m = 500.0;
    bad.upper_m = 100.0;
    EXPECT_THROW(check_axis(m, m, m, ones, bad), Error);
    EXPECT_THROW(
        check_axis(m, Matrix(2, 3), m, ones, CheckConfig{}), Error);
    Matrix non_binary = ones;
    non_binary(0, 0) = 0.5;
    EXPECT_THROW(check_axis(m, m, non_binary, ones, CheckConfig{}), Error);
}

}  // namespace
}  // namespace mcs
