// Integration tests for the I(TS,CS) framework driver.
#include "core/itscs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/check.hpp"
#include "core/variants.hpp"
#include "corruption/scenario.hpp"
#include "detect/detection.hpp"
#include "eval/methods.hpp"
#include "metrics/confusion.hpp"
#include "metrics/reconstruction_error.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

struct Fixture {
    TraceDataset truth;
    CorruptedDataset data;
    ItscsInput input;
};

Fixture make_fixture(double alpha, double beta, std::uint64_t seed) {
    Fixture f{make_small_dataset(seed, 24, 80), {}, {}};
    CorruptionConfig config;
    config.missing_ratio = alpha;
    config.fault_ratio = beta;
    config.seed = seed * 31 + 7;
    f.data = corrupt(f.truth, config);
    f.input = to_itscs_input(f.data);
    return f;
}

TEST(Itscs, DetectsInjectedFaultsWithHighRecallAndPrecision) {
    Fixture f = make_fixture(0.2, 0.2, 1);
    const ItscsResult result = run_itscs(f.input, ItscsConfig{});
    const ConfusionCounts c =
        evaluate_detection(result.detection, f.data.fault, f.data.existence);
    EXPECT_GE(c.recall(), 0.95);
    EXPECT_GE(c.precision(), 0.85);
}

TEST(Itscs, ReconstructionBeatsRawCorruption) {
    Fixture f = make_fixture(0.2, 0.2, 2);
    const ItscsResult result = run_itscs(f.input, ItscsConfig{});
    const double mae = reconstruction_mae(
        f.truth.x, f.truth.y, result.reconstructed_x, result.reconstructed_y,
        f.data.existence, result.detection);
    EXPECT_LT(mae, 1000.0);  // faults are >= 3 km; reconstruction is sub-km
}

TEST(Itscs, ConvergesWithinIterationCap) {
    Fixture f = make_fixture(0.3, 0.2, 3);
    ItscsConfig config;
    config.max_iterations = 10;
    const ItscsResult result = run_itscs(f.input, config);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, 8u);
    // History bookkeeping matches the iteration count.
    EXPECT_EQ(result.history.size(), result.iterations);
    EXPECT_EQ(result.history.back().iteration, result.iterations);
}

TEST(Itscs, FlaggedCountShrinksAfterFirstIteration) {
    // Iteration 1 deliberately over-flags (DETECT phase); CHECK pays the
    // false positives back, so the flagged count must drop.
    Fixture f = make_fixture(0.2, 0.1, 4);
    const ItscsResult result = run_itscs(f.input, ItscsConfig{});
    ASSERT_GE(result.history.size(), 2u);
    EXPECT_LT(result.history[1].flagged, result.history[0].flagged * 1.01);
}

TEST(Itscs, ObserverSeesEveryIteration) {
    Fixture f = make_fixture(0.1, 0.1, 5);
    std::size_t calls = 0;
    std::size_t last_iteration = 0;
    const ItscsResult result = run_itscs(
        f.input, ItscsConfig{},
        [&](std::size_t iteration, const Matrix& detection, const Matrix& rx,
            const Matrix& ry) {
            ++calls;
            last_iteration = iteration;
            EXPECT_EQ(detection.rows(), 24u);
            EXPECT_EQ(rx.cols(), 80u);
            EXPECT_EQ(ry.cols(), 80u);
        });
    EXPECT_EQ(calls, result.iterations);
    EXPECT_EQ(last_iteration, result.iterations);
}

TEST(Itscs, NoCorruptionFlagsAlmostNothing) {
    Fixture f = make_fixture(0.0, 0.0, 6);
    const ItscsResult result = run_itscs(f.input, ItscsConfig{});
    const ConfusionCounts c =
        evaluate_detection(result.detection, f.data.fault, f.data.existence);
    // No faults exist, so every flag is a false positive.
    EXPECT_LT(c.false_positive_rate(), 0.05);
}

TEST(Itscs, StrictChangeToleranceAlsoConverges) {
    Fixture f = make_fixture(0.2, 0.2, 7);
    ItscsConfig config;
    config.change_tolerance = 0.0;  // the paper's literal stopping rule
    config.max_iterations = 12;
    const ItscsResult result = run_itscs(f.input, config);
    EXPECT_TRUE(result.converged);
}

TEST(Itscs, DeterministicAcrossRuns) {
    Fixture f = make_fixture(0.2, 0.2, 8);
    const ItscsResult a = run_itscs(f.input, ItscsConfig{});
    const ItscsResult b = run_itscs(f.input, ItscsConfig{});
    EXPECT_TRUE(a.detection == b.detection);
    EXPECT_TRUE(a.reconstructed_x == b.reconstructed_x);
}

TEST(Itscs, InputValidation) {
    Fixture f = make_fixture(0.1, 0.1, 9);
    ItscsInput bad = f.input;
    bad.sy = Matrix(3, 3);
    EXPECT_THROW(run_itscs(bad, ItscsConfig{}), Error);
    bad = f.input;
    bad.tau_s = 0.0;
    EXPECT_THROW(run_itscs(bad, ItscsConfig{}), Error);
    bad = f.input;
    bad.existence(0, 0) = 0.7;
    EXPECT_THROW(run_itscs(bad, ItscsConfig{}), Error);
    ItscsConfig config;
    config.max_iterations = 0;
    EXPECT_THROW(run_itscs(f.input, config), Error);
}

TEST(Itscs, ValidateRejectsNonFiniteObservedCells) {
    Fixture f = make_fixture(0.1, 0.1, 10);
    // Force cell (2, 5) observed, then poison each matrix in turn: the
    // error must name the matrix, row and column.
    ItscsInput bad = f.input;
    bad.existence(2, 5) = 1.0;
    bad.vx(2, 5) = std::numeric_limits<double>::quiet_NaN();
    try {
        bad.validate();
        FAIL() << "expected mcs::Error";
    } catch (const Error& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("Vx"), std::string::npos) << message;
        EXPECT_NE(message.find("row 2"), std::string::npos) << message;
        EXPECT_NE(message.find("col 5"), std::string::npos) << message;
    }
    EXPECT_THROW(run_itscs(bad, ItscsConfig{}), Error);

    bad = f.input;
    bad.existence(0, 0) = 1.0;
    bad.sx(0, 0) = std::numeric_limits<double>::infinity();
    EXPECT_THROW(bad.validate(), Error);
    bad = f.input;
    bad.existence(1, 1) = 1.0;
    bad.sy(1, 1) = -std::numeric_limits<double>::infinity();
    EXPECT_THROW(bad.validate(), Error);
    bad = f.input;
    bad.existence(3, 3) = 1.0;
    bad.vy(3, 3) = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(bad.validate(), Error);
}

TEST(Itscs, ValidateIgnoresNonFiniteMissingCells) {
    // ℰ = 0 cells may hold anything — the framework never reads them, so
    // validation must not reject them (and validate_shapes never scans).
    Fixture f = make_fixture(0.1, 0.1, 11);
    ItscsInput garbage = f.input;
    garbage.existence(4, 7) = 0.0;
    garbage.sx(4, 7) = std::numeric_limits<double>::quiet_NaN();
    garbage.vy(4, 7) = std::numeric_limits<double>::infinity();
    EXPECT_NO_THROW(garbage.validate());
    EXPECT_NO_THROW(garbage.validate_shapes());
}

TEST(Itscs, CsOnlyBaselineReconstructsButDetectsNothing) {
    Fixture f = make_fixture(0.2, 0.1, 10);
    const ItscsResult result = run_cs_only(f.input, CsConfig{});
    EXPECT_EQ(count_flagged(result.detection), 0u);
    EXPECT_EQ(result.reconstructed_x.rows(), 24u);
    // With faults in the trusted set, CS-only reconstruction is poisoned:
    // its error exceeds the full framework's.
    const ItscsResult full = run_itscs(f.input, ItscsConfig{});
    const double mae_cs_only = full_matrix_mae(
        f.truth.x, f.truth.y, result.reconstructed_x,
        result.reconstructed_y);
    const double mae_full = full_matrix_mae(
        f.truth.x, f.truth.y, full.reconstructed_x, full.reconstructed_y);
    EXPECT_LT(mae_full, mae_cs_only);
}

TEST(Variants, NamesAndModes) {
    EXPECT_EQ(to_string(ItscsVariant::kFull), "I(TS,CS)");
    EXPECT_EQ(to_string(ItscsVariant::kWithoutV), "I(TS,CS) w/o V");
    EXPECT_EQ(to_string(ItscsVariant::kWithoutVT), "I(TS,CS) w/o VT");
    EXPECT_EQ(make_config(ItscsVariant::kFull).cs.mode,
              TemporalMode::kVelocity);
    EXPECT_EQ(make_config(ItscsVariant::kWithoutV).cs.mode,
              TemporalMode::kTemporalOnly);
    EXPECT_EQ(make_config(ItscsVariant::kWithoutVT).cs.mode,
              TemporalMode::kNone);
}


TEST(ItscsSingle, ScalarModalityDetectsAndReconstructs) {
    // A smooth scalar signal per participant with injected biases: the
    // single-axis entry point must behave like the location pipeline.
    const std::size_t n = 16;
    const std::size_t t = 60;
    Matrix truth(n, t);
    Matrix rate(n, t);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
            const double phase = 0.13 * static_cast<double>(i);
            truth(i, j) = 20.0 + 5.0 * std::sin(0.05 * j + phase);
            rate(i, j) = 5.0 * 0.05 * std::cos(0.05 * j + phase) / 30.0;
        }
    }
    Rng rng(3);
    Matrix existence = Matrix::constant(n, t, 1.0);
    Matrix fault(n, t);
    Matrix sensed = truth;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
            if (rng.bernoulli(0.15)) {
                existence(i, j) = 0.0;
                sensed(i, j) = 0.0;
            } else if (rng.bernoulli(0.15)) {
                fault(i, j) = 1.0;
                sensed(i, j) += rng.bernoulli(0.5) ? 12.0 : -12.0;
            }
        }
    }
    ItscsConfig config;
    config.detector.min_tolerance_m = 0.5;
    config.check.lower_m = 1.0;
    config.check.upper_m = 4.0;
    config.cs.rank = 6;
    const ItscsSingleResult result =
        run_itscs_single({sensed, rate, existence, 30.0}, config);
    const ConfusionCounts counts =
        evaluate_detection(result.detection, fault, existence);
    EXPECT_GE(counts.recall(), 0.9);
    EXPECT_GE(counts.precision(), 0.8);
    EXPECT_TRUE(result.converged);
    // Reconstruction tracks the clean signal.
    double mae = 0.0;
    for (std::size_t k = 0; k < truth.size(); ++k) {
        mae += std::abs(result.reconstructed.data()[k] -
                        truth.data()[k]);
    }
    mae /= static_cast<double>(truth.size());
    EXPECT_LT(mae, 2.0);
}

TEST(ItscsSingle, Validation) {
    ItscsSingleInput bad;
    bad.s = Matrix(4, 10, 1.0);
    bad.rate = Matrix(4, 9);  // wrong shape
    bad.existence = Matrix::constant(4, 10, 1.0);
    EXPECT_THROW(run_itscs_single(bad, ItscsConfig{}), Error);
    bad.rate = Matrix(4, 10);
    bad.tau_s = -1.0;
    EXPECT_THROW(run_itscs_single(bad, ItscsConfig{}), Error);
}

TEST(ItscsSingle, MatchesTwoAxisRunWhenAxesIdentical) {
    // Feeding the same matrix as both x and y must flag the same cells as
    // the single-axis run (the union of identical detections).
    Fixture f = make_fixture(0.2, 0.15, 42);
    ItscsConfig config;
    const ItscsSingleResult single = run_itscs_single(
        {f.input.sx, f.input.vx, f.input.existence, f.input.tau_s}, config);
    ItscsInput doubled = f.input;
    doubled.sy = f.input.sx;
    doubled.vy = f.input.vx;
    const ItscsResult both = run_itscs(doubled, config);
    EXPECT_TRUE(single.detection == both.detection);
    EXPECT_TRUE(single.reconstructed == both.reconstructed_x);
}

}  // namespace
}  // namespace mcs

