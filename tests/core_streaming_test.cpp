// Tests for the streaming (sliding-window) detector.
#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/context.hpp"
#include "corruption/scenario.hpp"
#include "metrics/confusion.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

// Feed a corrupted dataset slot by slot into the detector.
SlotUpload slot_of(const CorruptedDataset& data, std::size_t j) {
    const std::size_t n = data.participants();
    SlotUpload upload;
    upload.x.resize(n);
    upload.y.resize(n);
    upload.vx.resize(n);
    upload.vy.resize(n);
    upload.observed.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        upload.x[i] = data.sx(i, j);
        upload.y[i] = data.sy(i, j);
        upload.vx[i] = data.vx(i, j);
        upload.vy[i] = data.vy(i, j);
        upload.observed[i] = data.existence(i, j) != 0.0 ? 1 : 0;
    }
    return upload;
}

TEST(Streaming, ReportsArriveAtWindowBoundaries) {
    const TraceDataset truth = make_small_dataset(1, 12, 100);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.1;
    corruption.fault_ratio = 0.1;
    const CorruptedDataset data = corrupt(truth, corruption);

    StreamingDetector::Config config;
    config.window = 40;
    config.stride = 20;
    StreamingDetector detector(12, truth.tau_s, config);

    std::size_t reports = 0;
    for (std::size_t j = 0; j < truth.slots(); ++j) {
        detector.push_slot(slot_of(data, j));
        while (auto report = detector.poll()) {
            ++reports;
            EXPECT_EQ(report->detection.rows(), 12u);
            EXPECT_EQ(report->detection.cols(), 40u);
            // Windows start at 0, 20, 40, ...
            EXPECT_EQ(report->first_slot % 20, 0u);
        }
    }
    // 100 slots, window 40, stride 20 -> windows at slots 40, 60, 80, 100.
    EXPECT_EQ(reports, 4u);
    EXPECT_EQ(detector.slots_received(), 100u);
    EXPECT_EQ(detector.reports_pending(), 0u);
}

TEST(Streaming, DetectionQualityPerWindow) {
    const TraceDataset truth = make_small_dataset(2, 20, 120);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.2;
    corruption.fault_ratio = 0.15;
    const CorruptedDataset data = corrupt(truth, corruption);

    StreamingDetector::Config config;
    config.window = 60;
    config.stride = 30;
    StreamingDetector detector(20, truth.tau_s, config);

    std::size_t windows = 0;
    for (std::size_t j = 0; j < truth.slots(); ++j) {
        detector.push_slot(slot_of(data, j));
        while (auto report = detector.poll()) {
            ++windows;
            // Score against ground truth for exactly this window.
            ConfusionCounts counts;
            for (std::size_t i = 0; i < 20; ++i) {
                for (std::size_t k = 0; k < config.window; ++k) {
                    const std::size_t column = report->first_slot + k;
                    if (data.existence(i, column) == 0.0) {
                        continue;
                    }
                    const bool flagged = report->detection(i, k) != 0.0;
                    const bool faulty = data.fault(i, column) != 0.0;
                    if (flagged && faulty) {
                        ++counts.true_positive;
                    } else if (flagged) {
                        ++counts.false_positive;
                    } else if (faulty) {
                        ++counts.false_negative;
                    } else {
                        ++counts.true_negative;
                    }
                }
            }
            EXPECT_GE(counts.recall(), 0.9)
                << "window at slot " << report->first_slot;
            EXPECT_GE(counts.precision(), 0.8)
                << "window at slot " << report->first_slot;
        }
    }
    EXPECT_EQ(windows, 3u);  // slots 60, 90, 120
}

TEST(Streaming, BoundedMemory) {
    // Pushing far more slots than the window must not grow state: probe
    // indirectly by checking reports keep coming with stable shapes.
    StreamingDetector::Config config;
    config.window = 16;
    config.stride = 16;
    StreamingDetector detector(4, 30.0, config);
    SlotUpload upload;
    upload.x.assign(4, 100.0);
    upload.y.assign(4, 100.0);
    upload.vx.assign(4, 0.0);
    upload.vy.assign(4, 0.0);
    upload.observed.assign(4, 1);
    for (int j = 0; j < 160; ++j) {
        detector.push_slot(upload);
    }
    std::size_t reports = 0;
    while (auto report = detector.poll()) {
        ++reports;
        EXPECT_EQ(report->detection.cols(), 16u);
    }
    EXPECT_EQ(reports, 10u);
}

TEST(Streaming, Validation) {
    EXPECT_THROW(StreamingDetector(0, 30.0), Error);
    EXPECT_THROW(StreamingDetector(4, 0.0), Error);
    StreamingDetector::Config bad;
    bad.window = 3;  // smaller than the detector's median window
    EXPECT_THROW(StreamingDetector(4, 30.0, bad), Error);
    bad = StreamingDetector::Config{};
    bad.stride = bad.window + 1;
    EXPECT_THROW(StreamingDetector(4, 30.0, bad), Error);

    StreamingDetector detector(4, 30.0);
    SlotUpload wrong;
    wrong.x.assign(3, 0.0);  // wrong participant count
    wrong.y.assign(4, 0.0);
    wrong.vx.assign(4, 0.0);
    wrong.vy.assign(4, 0.0);
    wrong.observed.assign(4, 1);
    EXPECT_THROW(detector.push_slot(wrong), Error);
}

TEST(Streaming, PollOnEmptyReturnsNullopt) {
    StreamingDetector detector(4, 30.0);
    EXPECT_FALSE(detector.poll().has_value());
}

TEST(Streaming, FlushEvaluatesPartialTail) {
    const TraceDataset truth = make_small_dataset(3, 10, 50);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.1;
    corruption.fault_ratio = 0.1;
    const CorruptedDataset data = corrupt(truth, corruption);

    StreamingDetector::Config config;
    config.window = 24;
    config.stride = 12;
    StreamingDetector detector(10, truth.tau_s, config);
    for (std::size_t j = 0; j < truth.slots(); ++j) {
        detector.push_slot(slot_of(data, j));
    }
    // 50 slots: boundaries at 24, 36, 48; slots 48–49 are uncovered.
    EXPECT_EQ(detector.reports_pending(), 3u);
    EXPECT_EQ(detector.flush(), 1u);
    EXPECT_EQ(detector.flush(), 0u);  // second flush has nothing new

    std::size_t reports = 0;
    std::optional<WindowReport> last;
    while (auto report = detector.poll()) {
        ++reports;
        last = std::move(report);
    }
    ASSERT_EQ(reports, 4u);
    // The tail evaluation re-reads the full buffer: slots 26..49.
    EXPECT_EQ(last->first_slot, 26u);
    EXPECT_EQ(last->detection.cols(), 24u);

    // A detector whose every slot is already covered has nothing to flush.
    StreamingDetector aligned(10, truth.tau_s, config);
    for (std::size_t j = 0; j < 48; ++j) {
        aligned.push_slot(slot_of(data, j));
    }
    EXPECT_EQ(aligned.flush(), 0u);

    // A stream shorter than the detector's median window cannot evaluate.
    StreamingDetector tiny(10, truth.tau_s, config);
    for (std::size_t j = 0; j < 3; ++j) {
        tiny.push_slot(slot_of(data, j));
    }
    EXPECT_EQ(tiny.flush(), 0u);
}

// The acceptance bar for cross-window warm starts: same detections as a
// cold run (F1 within 0.01), measurably fewer ASD iterations (counters).
TEST(Streaming, WarmStartMatchesColdAndSavesAsdIterations) {
    const TraceDataset truth = make_small_dataset(7, 16, 100);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.15;
    corruption.fault_ratio = 0.15;
    const CorruptedDataset data = corrupt(truth, corruption);

    StreamingDetector::Config config;
    config.window = 40;
    config.stride = 15;

    struct Run {
        std::vector<WindowReport> reports;
        std::uint64_t asd_iterations = 0;
        std::size_t warm_windows = 0;
    };
    const auto run = [&](bool warm) {
        StreamingDetector::Config c = config;
        c.warm_start = warm;
        PipelineContext ctx;
        StreamingDetector detector(16, truth.tau_s, c);
        detector.attach_context(&ctx);
        Run out;
        for (std::size_t j = 0; j < truth.slots(); ++j) {
            detector.push_slot(slot_of(data, j));
            while (auto report = detector.poll()) {
                out.reports.push_back(std::move(*report));
            }
        }
        out.asd_iterations = ctx.counters().asd_iterations;
        out.warm_windows = detector.warm_windows();
        return out;
    };
    const Run cold = run(false);
    const Run warm = run(true);

    ASSERT_EQ(cold.reports.size(), warm.reports.size());
    ASSERT_GT(cold.reports.size(), 1u);
    EXPECT_EQ(cold.warm_windows, 0u);
    EXPECT_EQ(warm.warm_windows, warm.reports.size() - 1);

    // Warm seeding must pay for itself: strictly fewer ASD iterations
    // across the stream (the first window is identical; every later one
    // starts from the refreshed previous factors).
    EXPECT_LT(warm.asd_iterations, cold.asd_iterations)
        << "warm " << warm.asd_iterations << " vs cold "
        << cold.asd_iterations;

    // ...and must not change what gets detected: per-window F1 of warm
    // and cold against ground truth within 0.01 of each other.
    const auto f1_of = [&](const WindowReport& report) {
        ConfusionCounts counts;
        for (std::size_t i = 0; i < 16; ++i) {
            for (std::size_t k = 0; k < report.detection.cols(); ++k) {
                const std::size_t column = report.first_slot + k;
                if (data.existence(i, column) == 0.0) {
                    continue;
                }
                const bool flagged = report.detection(i, k) != 0.0;
                const bool faulty = data.fault(i, column) != 0.0;
                if (flagged && faulty) {
                    ++counts.true_positive;
                } else if (flagged) {
                    ++counts.false_positive;
                } else if (faulty) {
                    ++counts.false_negative;
                } else {
                    ++counts.true_negative;
                }
            }
        }
        return counts.f1();
    };
    for (std::size_t k = 0; k < cold.reports.size(); ++k) {
        EXPECT_EQ(cold.reports[k].first_slot, warm.reports[k].first_slot);
        EXPECT_NEAR(f1_of(cold.reports[k]), f1_of(warm.reports[k]), 0.01)
            << "window at slot " << cold.reports[k].first_slot;
    }
}

}  // namespace
}  // namespace mcs
