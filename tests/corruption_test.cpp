// Tests for the corruption substrate: existence masks, fault injection,
// velocity faults, and the end-to-end scenario builder.
#include "corruption/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "linalg/ops.hpp"
#include "corruption/adversary.hpp"
#include "corruption/existence.hpp"
#include "corruption/fault_injector.hpp"
#include "corruption/velocity_faults.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

TEST(Existence, ExactMissingCount) {
    Rng rng(1);
    const Matrix mask = make_existence_mask(10, 20, 0.25, rng);
    EXPECT_EQ(count_equal(mask, 0.0), 50u);
    EXPECT_DOUBLE_EQ(missing_fraction(mask), 0.25);
}

TEST(Existence, ZeroAndFullRatios) {
    Rng rng(2);
    EXPECT_DOUBLE_EQ(missing_fraction(make_existence_mask(5, 5, 0.0, rng)),
                     0.0);
    EXPECT_DOUBLE_EQ(missing_fraction(make_existence_mask(5, 5, 1.0, rng)),
                     1.0);
}

TEST(Existence, InvalidRatioRejected) {
    Rng rng(3);
    EXPECT_THROW(make_existence_mask(5, 5, -0.1, rng), Error);
    EXPECT_THROW(make_existence_mask(5, 5, 1.1, rng), Error);
    EXPECT_THROW(make_existence_mask(0, 5, 0.5, rng), Error);
}

TEST(Existence, MissingFractionValidatesBinary) {
    Matrix m(2, 2, 0.5);
    EXPECT_THROW(missing_fraction(m), Error);
}

TEST(FaultInjector, ExactFaultCountOnObservedCells) {
    Rng rng(4);
    const Matrix x(8, 25, 100.0);
    const Matrix y(8, 25, 200.0);
    Rng mask_rng(5);
    const Matrix existence = make_existence_mask(8, 25, 0.2, mask_rng);
    const FaultInjection inj =
        inject_faults(x, y, existence, 0.3, 3000.0, 30000.0, 10.0, rng);
    EXPECT_EQ(count_equal(inj.fault, 1.0),
              static_cast<std::size_t>(std::llround(0.3 * 8 * 25)));
    // No fault on a missing cell.
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 25; ++j) {
            if (existence(i, j) == 0.0) {
                EXPECT_DOUBLE_EQ(inj.fault(i, j), 0.0);
                EXPECT_DOUBLE_EQ(inj.sx(i, j), 0.0);
                EXPECT_DOUBLE_EQ(inj.sy(i, j), 0.0);
            }
        }
    }
}

TEST(FaultInjector, FaultMagnitudesInRange) {
    Rng rng(6);
    const Matrix x(5, 40, 0.0);
    const Matrix y(5, 40, 0.0);
    const Matrix existence = Matrix::constant(5, 40, 1.0);
    const FaultInjection inj =
        inject_faults(x, y, existence, 0.5, 2000.0, 8000.0, 0.0, rng);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 40; ++j) {
            const double offset = std::hypot(inj.sx(i, j), inj.sy(i, j));
            if (inj.fault(i, j) == 1.0) {
                EXPECT_GE(offset, 2000.0 - 1e-6);
                EXPECT_LE(offset, 8000.0 + 1e-6);
            } else {
                EXPECT_DOUBLE_EQ(offset, 0.0);  // noise sigma 0
            }
        }
    }
}

TEST(FaultInjector, NormalNoiseIsSmall) {
    Rng rng(7);
    const Matrix x(4, 50, 1000.0);
    const Matrix y(4, 50, 1000.0);
    const Matrix existence = Matrix::constant(4, 50, 1.0);
    const FaultInjection inj =
        inject_faults(x, y, existence, 0.0, 3000.0, 30000.0, 10.0, rng);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 50; ++j) {
            EXPECT_NEAR(inj.sx(i, j), 1000.0, 60.0);  // 6 sigma
        }
    }
}

TEST(FaultInjector, TooManyFaultsRejected) {
    Rng rng(8);
    const Matrix x(4, 10, 0.0);
    const Matrix y(4, 10, 0.0);
    Rng mask_rng(9);
    const Matrix existence = make_existence_mask(4, 10, 0.5, mask_rng);
    EXPECT_THROW(
        inject_faults(x, y, existence, 0.8, 1000.0, 2000.0, 0.0, rng),
        Error);
}

TEST(VelocityFaults, ExactCountAndScaleRange) {
    Rng rng(10);
    const Matrix vx(6, 30, 10.0);
    const Matrix vy(6, 30, -5.0);
    const VelocityFaults vf = inject_velocity_faults(vx, vy, 0.25, rng);
    EXPECT_EQ(count_equal(vf.faulted, 1.0),
              static_cast<std::size_t>(std::llround(0.25 * 6 * 30)));
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = 0; j < 30; ++j) {
            if (vf.faulted(i, j) == 1.0) {
                const double factor = vf.vx(i, j) / 10.0;
                EXPECT_GE(factor, 0.0);
                EXPECT_LE(factor, 2.0);
                // Both components scaled by the same factor.
                EXPECT_NEAR(vf.vy(i, j) / -5.0, factor, 1e-12);
            } else {
                EXPECT_DOUBLE_EQ(vf.vx(i, j), 10.0);
                EXPECT_DOUBLE_EQ(vf.vy(i, j), -5.0);
            }
        }
    }
}

TEST(Scenario, ConfigValidation) {
    CorruptionConfig config;
    EXPECT_NO_THROW(config.validate());
    config.missing_ratio = 0.7;
    config.fault_ratio = 0.5;  // alpha + beta > 1
    EXPECT_THROW(config.validate(), Error);
    config = CorruptionConfig{};
    config.fault_bias_min_m = 5000.0;
    config.fault_bias_max_m = 1000.0;
    EXPECT_THROW(config.validate(), Error);
    config = CorruptionConfig{};
    config.noise_sigma_m = -1.0;
    EXPECT_THROW(config.validate(), Error);
}

TEST(Scenario, EndToEndBookkeeping) {
    const TraceDataset truth = make_small_dataset(11, 12, 40);
    CorruptionConfig config;
    config.missing_ratio = 0.3;
    config.fault_ratio = 0.2;
    config.velocity_fault_ratio = 0.1;
    config.seed = 77;
    const CorruptedDataset data = corrupt(truth, config);

    EXPECT_EQ(data.participants(), 12u);
    EXPECT_EQ(data.slots(), 40u);
    EXPECT_DOUBLE_EQ(missing_fraction(data.existence), 0.3);
    EXPECT_DOUBLE_EQ(fault_fraction(data.fault), 0.2);
    EXPECT_DOUBLE_EQ(data.tau_s, truth.tau_s);

    // Eq. (6): S = X ∘ ℰ + faults; normal observed cells stay near truth.
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < 40; ++j) {
            if (data.existence(i, j) == 0.0) {
                EXPECT_DOUBLE_EQ(data.sx(i, j), 0.0);
            } else if (data.fault(i, j) == 0.0) {
                EXPECT_NEAR(data.sx(i, j), truth.x(i, j), 80.0);
            } else {
                const double offset = std::hypot(
                    data.sx(i, j) - truth.x(i, j),
                    data.sy(i, j) - truth.y(i, j));
                EXPECT_GE(offset, config.fault_bias_min_m - 1e-6);
            }
        }
    }
}

TEST(Scenario, DeterministicInSeed) {
    const TraceDataset truth = make_small_dataset(12, 8, 30);
    CorruptionConfig config;
    config.missing_ratio = 0.2;
    config.fault_ratio = 0.2;
    config.seed = 5;
    const CorruptedDataset a = corrupt(truth, config);
    const CorruptedDataset b = corrupt(truth, config);
    EXPECT_TRUE(a.sx == b.sx);
    EXPECT_TRUE(a.fault == b.fault);
    config.seed = 6;
    const CorruptedDataset c = corrupt(truth, config);
    EXPECT_FALSE(a.sx == c.sx);
}

TEST(DriftFaults, ExactCountAndMagnitudes) {
    Rng rng(20);
    const Matrix x(10, 60, 50000.0);
    const Matrix y(10, 60, 50000.0);
    const Matrix existence = Matrix::constant(10, 60, 1.0);
    const FaultInjection inj = inject_drift_faults(
        x, y, existence, 0.2, 3000.0, 10000.0, 0.0, 6.0, rng);
    EXPECT_EQ(count_equal(inj.fault, 1.0),
              static_cast<std::size_t>(std::llround(0.2 * 600)));
    // Every fault cell is km-scale away from truth.
    for (std::size_t i = 0; i < 10; ++i) {
        for (std::size_t j = 0; j < 60; ++j) {
            if (inj.fault(i, j) == 1.0) {
                const double offset =
                    std::hypot(inj.sx(i, j) - 50000.0,
                               inj.sy(i, j) - 50000.0);
                EXPECT_GT(offset, 1000.0);
            }
        }
    }
}

TEST(DriftFaults, FaultsArriveInBursts) {
    Rng rng(21);
    const Matrix x(10, 100, 0.0);
    const Matrix y(10, 100, 0.0);
    const Matrix existence = Matrix::constant(10, 100, 1.0);
    const FaultInjection inj = inject_drift_faults(
        x, y, existence, 0.15, 3000.0, 10000.0, 0.0, 8.0, rng);
    // Count fault cells whose temporal neighbour is also faulty; bursts
    // make this fraction much higher than under independent placement.
    std::size_t adjacent = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        for (std::size_t j = 0; j < 100; ++j) {
            if (inj.fault(i, j) != 1.0) {
                continue;
            }
            ++total;
            const bool left = j > 0 && inj.fault(i, j - 1) == 1.0;
            const bool right = j + 1 < 100 && inj.fault(i, j + 1) == 1.0;
            if (left || right) {
                ++adjacent;
            }
        }
    }
    EXPECT_GT(static_cast<double>(adjacent) / static_cast<double>(total),
              0.6);
}

TEST(DriftFaults, ScenarioIntegration) {
    const TraceDataset truth = make_small_dataset(22, 12, 60);
    CorruptionConfig config;
    config.missing_ratio = 0.1;
    config.fault_ratio = 0.2;
    config.fault_model = FaultModel::kDrift;
    config.seed = 8;
    const CorruptedDataset data = corrupt(truth, config);
    EXPECT_NEAR(fault_fraction(data.fault), 0.2, 0.02);
    config.drift_mean_slots = 0.5;  // invalid
    EXPECT_THROW(config.validate(), Error);
}

// Property sweep: mask/fault ratios are exact across the (α, β) grid.
class ScenarioProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ScenarioProperty, RatiosExact) {
    const auto [alpha, beta] = GetParam();
    const TraceDataset truth = make_small_dataset(13, 10, 30);
    CorruptionConfig config;
    config.missing_ratio = alpha;
    config.fault_ratio = beta;
    config.seed = 123;
    const CorruptedDataset data = corrupt(truth, config);
    EXPECT_NEAR(missing_fraction(data.existence), alpha, 0.002);
    EXPECT_NEAR(fault_fraction(data.fault), beta, 0.002);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenarioProperty,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3, 0.5),
                       ::testing::Values(0.0, 0.1, 0.3, 0.5)));

// ---- Structured adversary (DESIGN.md §16) ------------------------------

bool same_cells(const Matrix& a, const Matrix& b) {
    const auto da = a.data();
    const auto db = b.data();
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::equal(da.begin(), da.end(), db.begin());
}

CorruptedDataset adversary_base(std::uint64_t seed = 3) {
    const TraceDataset truth = make_small_dataset(seed, 24, 40);
    CorruptionConfig config;
    config.missing_ratio = 0.2;
    config.fault_ratio = 0.1;
    config.seed = 7;
    return corrupt(truth, config);
}

AdversaryInjection apply_to(CorruptedDataset& data,
                            const AdversarySpec& spec) {
    const AdversaryInjector injector(spec);
    return injector.apply(data.sx, data.sy, data.vx, data.vy,
                          data.existence, data.tau_s, &data.fault);
}

TEST(AdversarySpec, ParsesTheFullGrammar) {
    const AdversarySpec spec = AdversarySpec::parse(
        "collude=8,outage=12,outagespan=20,outagenoise=35.5,replay=3,"
        "replayshift=7,seed=99");
    EXPECT_EQ(spec.collude, 8u);
    EXPECT_EQ(spec.outage, 12u);
    EXPECT_EQ(spec.outage_span, 20u);
    EXPECT_DOUBLE_EQ(spec.outage_noise_m, 35.5);
    EXPECT_EQ(spec.replay, 3u);
    EXPECT_EQ(spec.replay_shift, 7u);
    EXPECT_EQ(spec.seed, 99u);
    EXPECT_FALSE(spec.idle());
    EXPECT_TRUE(AdversarySpec::parse("").idle());
    EXPECT_TRUE(AdversarySpec::parse("seed=4").idle());
}

TEST(AdversarySpec, UnknownKeySuggestsTheNearestOne) {
    try {
        AdversarySpec::parse("colude=8");
        FAIL() << "expected mcs::Error";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("did you mean 'collude'"),
                  std::string::npos)
            << error.what();
    }
    // Nothing close: the message enumerates the grammar instead.
    try {
        AdversarySpec::parse("zzzzzzzz=1");
        FAIL() << "expected mcs::Error";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("expected collude"),
                  std::string::npos)
            << error.what();
    }
}

TEST(AdversarySpec, RejectsMalformedSpecs) {
    EXPECT_THROW(AdversarySpec::parse("collude"), Error);
    EXPECT_THROW(AdversarySpec::parse("collude=abc"), Error);
    EXPECT_THROW(AdversarySpec::parse("collude=4x"), Error);
    EXPECT_THROW(AdversarySpec::parse("outagenoise=-3"), Error);
    EXPECT_THROW(AdversarySpec::parse("replay=2,replayshift=0"), Error);
}

TEST(Adversary, ApplyIsDeterministicInSpecAndSeed) {
    CorruptedDataset a = adversary_base();
    CorruptedDataset b = adversary_base();
    const AdversarySpec spec =
        AdversarySpec::parse("collude=4,outage=6,replay=2,seed=21");
    const AdversaryInjection ia = apply_to(a, spec);
    const AdversaryInjection ib = apply_to(b, spec);
    EXPECT_TRUE(same_cells(a.sx, b.sx));
    EXPECT_TRUE(same_cells(a.sy, b.sy));
    EXPECT_TRUE(same_cells(a.existence, b.existence));
    EXPECT_TRUE(same_cells(a.fault, b.fault));
    EXPECT_TRUE(same_cells(ia.mask, ib.mask));
    EXPECT_EQ(ia.colluders, ib.colluders);
    EXPECT_EQ(ia.replays, ib.replays);
    EXPECT_EQ(ia.outage_first_row, ib.outage_first_row);
    EXPECT_EQ(ia.outage_first_slot, ib.outage_first_slot);
}

TEST(Adversary, CollusionKeepsUploadPatternAndMarksEveryObservedCell) {
    CorruptedDataset data = adversary_base();
    const CorruptedDataset before = data;
    const AdversaryInjection injection =
        apply_to(data, AdversarySpec::parse("collude=5,seed=11"));
    ASSERT_EQ(injection.colluders.size(), 5u);
    EXPECT_TRUE(same_cells(data.existence, before.existence));
    std::size_t expected_marks = 0;
    for (const std::size_t row : injection.colluders) {
        for (std::size_t j = 0; j < data.slots(); ++j) {
            if (before.existence(row, j) == 0.0) {
                EXPECT_EQ(injection.mask(row, j), 0.0);
                continue;
            }
            ++expected_marks;
            EXPECT_EQ(injection.mask(row, j), 1.0);
            EXPECT_EQ(data.fault(row, j), 1.0);
        }
    }
    EXPECT_EQ(count_equal(injection.mask, 1.0), expected_marks);
}

TEST(Adversary, ColluderSetsAreNestedAcrossGrowingK) {
    // The collude=4 fake rows must reappear verbatim inside collude=8:
    // the degradation curve over k measures the adversary growing, not
    // the RNG reshuffling.
    CorruptedDataset small = adversary_base();
    CorruptedDataset large = adversary_base();
    const AdversaryInjection is =
        apply_to(small, AdversarySpec::parse("collude=4,seed=11"));
    const AdversaryInjection il =
        apply_to(large, AdversarySpec::parse("collude=8,seed=11"));
    ASSERT_EQ(is.colluders,
              std::vector<std::size_t>(il.colluders.begin(),
                                       il.colluders.begin() + 4));
    for (const std::size_t row : is.colluders) {
        for (std::size_t j = 0; j < small.slots(); ++j) {
            EXPECT_EQ(small.sx(row, j), large.sx(row, j));
            EXPECT_EQ(small.sy(row, j), large.sy(row, j));
        }
    }
}

TEST(Adversary, ReplayCopiesTheVictimShiftedCircularly) {
    CorruptedDataset data = adversary_base();
    const CorruptedDataset before = data;
    const AdversarySpec spec =
        AdversarySpec::parse("replay=2,replayshift=5,seed=13");
    const AdversaryInjection injection = apply_to(data, spec);
    ASSERT_EQ(injection.replays.size(), 2u);
    const std::size_t t = data.slots();
    for (const auto& [fraud, victim] : injection.replays) {
        EXPECT_NE(fraud, victim);
        for (std::size_t j = 0; j < t; ++j) {
            const std::size_t js = (j + t - 5) % t;
            if (before.existence(victim, js) == 0.0) {
                EXPECT_EQ(data.existence(fraud, j), 0.0);
                EXPECT_EQ(injection.mask(fraud, j), 0.0);
                continue;
            }
            EXPECT_EQ(data.existence(fraud, j), 1.0);
            EXPECT_EQ(data.sx(fraud, j), before.sx(victim, js));
            EXPECT_EQ(data.sy(fraud, j), before.sy(victim, js));
            EXPECT_EQ(injection.mask(fraud, j), 1.0);
            EXPECT_EQ(data.fault(fraud, j), 1.0);
            // The victim's own row is untouched.
            EXPECT_EQ(data.sx(victim, js), before.sx(victim, js));
        }
    }
}

TEST(Adversary, TotalOutageRemovesTheBlockAndClearsFaultMarks) {
    CorruptedDataset data = adversary_base();
    const CorruptedDataset before = data;
    const AdversaryInjection injection =
        apply_to(data, AdversarySpec::parse("outage=6,outagespan=10,seed=5"));
    EXPECT_EQ(injection.outage_rows, 6u);
    EXPECT_EQ(injection.outage_slots, 10u);
    EXPECT_GT(injection.outage_cells, 0u);
    // Dropped cells can be neither detected nor missed: no mask marks at
    // all in total-outage mode.
    EXPECT_EQ(count_equal(injection.mask, 1.0), 0u);
    std::size_t removed = 0;
    for (std::size_t i = injection.outage_first_row;
         i < injection.outage_first_row + injection.outage_rows; ++i) {
        for (std::size_t j = injection.outage_first_slot;
             j < injection.outage_first_slot + injection.outage_slots; ++j) {
            EXPECT_EQ(data.existence(i, j), 0.0);
            EXPECT_EQ(data.fault(i, j), 0.0);
            if (before.existence(i, j) != 0.0) {
                ++removed;
            }
        }
    }
    EXPECT_EQ(removed, injection.outage_cells);
}

TEST(Adversary, DegradedOutageKeepsObservationsAndMarksThem) {
    CorruptedDataset data = adversary_base();
    const CorruptedDataset before = data;
    const AdversaryInjection injection = apply_to(
        data, AdversarySpec::parse("outage=6,outagenoise=40,seed=5"));
    EXPECT_TRUE(same_cells(data.existence, before.existence));
    EXPECT_EQ(count_equal(injection.mask, 1.0), injection.outage_cells);
    bool any_moved = false;
    for (std::size_t i = injection.outage_first_row;
         i < injection.outage_first_row + injection.outage_rows; ++i) {
        for (std::size_t j = injection.outage_first_slot;
             j < injection.outage_first_slot + injection.outage_slots; ++j) {
            if (before.existence(i, j) == 0.0) {
                continue;
            }
            EXPECT_EQ(injection.mask(i, j), 1.0);
            EXPECT_EQ(data.fault(i, j), 1.0);
            any_moved = any_moved || data.sx(i, j) != before.sx(i, j);
        }
    }
    EXPECT_TRUE(any_moved);
}

TEST(Adversary, OversizedRolesAreRejected) {
    CorruptedDataset data = adversary_base();  // 24 participants
    AdversarySpec spec;
    spec.collude = 20;
    spec.replay = 3;  // 20 + 2*3 > 24
    EXPECT_THROW(apply_to(data, spec), Error);
    AdversarySpec outage;
    outage.outage = 25;
    EXPECT_THROW(apply_to(data, outage), Error);
}

TEST(Adversary, ScenarioIntegrationCarriesTheInjection) {
    const TraceDataset truth = make_small_dataset(3, 24, 40);
    CorruptionConfig config;
    config.missing_ratio = 0.2;
    config.fault_ratio = 0.1;
    config.seed = 7;
    const CorruptedDataset plain = corrupt(truth, config);
    ASSERT_EQ(plain.adversary.mask.rows(), 24u);
    EXPECT_EQ(count_equal(plain.adversary.mask, 1.0), 0u);

    config.adversary = AdversarySpec::parse("collude=4,seed=21");
    const CorruptedDataset hostile = corrupt(truth, config);
    EXPECT_EQ(hostile.adversary.colluders.size(), 4u);
    const std::size_t marks = count_equal(hostile.adversary.mask, 1.0);
    EXPECT_GT(marks, 0u);
    // Every masked cell is also a fault-mask cell: precision/recall stay
    // defined against the combined ground truth.
    for (std::size_t i = 0; i < hostile.participants(); ++i) {
        for (std::size_t j = 0; j < hostile.slots(); ++j) {
            if (hostile.adversary.mask(i, j) == 1.0) {
                EXPECT_EQ(hostile.fault(i, j), 1.0);
            }
        }
    }
    // The i.i.d. background is untouched outside adversarial rows.
    EXPECT_EQ(hostile.tau_s, plain.tau_s);
}

}  // namespace
}  // namespace mcs
