// Tests for the corruption substrate: existence masks, fault injection,
// velocity faults, and the end-to-end scenario builder.
#include "corruption/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "linalg/ops.hpp"
#include "corruption/existence.hpp"
#include "corruption/fault_injector.hpp"
#include "corruption/velocity_faults.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

TEST(Existence, ExactMissingCount) {
    Rng rng(1);
    const Matrix mask = make_existence_mask(10, 20, 0.25, rng);
    EXPECT_EQ(count_equal(mask, 0.0), 50u);
    EXPECT_DOUBLE_EQ(missing_fraction(mask), 0.25);
}

TEST(Existence, ZeroAndFullRatios) {
    Rng rng(2);
    EXPECT_DOUBLE_EQ(missing_fraction(make_existence_mask(5, 5, 0.0, rng)),
                     0.0);
    EXPECT_DOUBLE_EQ(missing_fraction(make_existence_mask(5, 5, 1.0, rng)),
                     1.0);
}

TEST(Existence, InvalidRatioRejected) {
    Rng rng(3);
    EXPECT_THROW(make_existence_mask(5, 5, -0.1, rng), Error);
    EXPECT_THROW(make_existence_mask(5, 5, 1.1, rng), Error);
    EXPECT_THROW(make_existence_mask(0, 5, 0.5, rng), Error);
}

TEST(Existence, MissingFractionValidatesBinary) {
    Matrix m(2, 2, 0.5);
    EXPECT_THROW(missing_fraction(m), Error);
}

TEST(FaultInjector, ExactFaultCountOnObservedCells) {
    Rng rng(4);
    const Matrix x(8, 25, 100.0);
    const Matrix y(8, 25, 200.0);
    Rng mask_rng(5);
    const Matrix existence = make_existence_mask(8, 25, 0.2, mask_rng);
    const FaultInjection inj =
        inject_faults(x, y, existence, 0.3, 3000.0, 30000.0, 10.0, rng);
    EXPECT_EQ(count_equal(inj.fault, 1.0),
              static_cast<std::size_t>(std::llround(0.3 * 8 * 25)));
    // No fault on a missing cell.
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 25; ++j) {
            if (existence(i, j) == 0.0) {
                EXPECT_DOUBLE_EQ(inj.fault(i, j), 0.0);
                EXPECT_DOUBLE_EQ(inj.sx(i, j), 0.0);
                EXPECT_DOUBLE_EQ(inj.sy(i, j), 0.0);
            }
        }
    }
}

TEST(FaultInjector, FaultMagnitudesInRange) {
    Rng rng(6);
    const Matrix x(5, 40, 0.0);
    const Matrix y(5, 40, 0.0);
    const Matrix existence = Matrix::constant(5, 40, 1.0);
    const FaultInjection inj =
        inject_faults(x, y, existence, 0.5, 2000.0, 8000.0, 0.0, rng);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 40; ++j) {
            const double offset = std::hypot(inj.sx(i, j), inj.sy(i, j));
            if (inj.fault(i, j) == 1.0) {
                EXPECT_GE(offset, 2000.0 - 1e-6);
                EXPECT_LE(offset, 8000.0 + 1e-6);
            } else {
                EXPECT_DOUBLE_EQ(offset, 0.0);  // noise sigma 0
            }
        }
    }
}

TEST(FaultInjector, NormalNoiseIsSmall) {
    Rng rng(7);
    const Matrix x(4, 50, 1000.0);
    const Matrix y(4, 50, 1000.0);
    const Matrix existence = Matrix::constant(4, 50, 1.0);
    const FaultInjection inj =
        inject_faults(x, y, existence, 0.0, 3000.0, 30000.0, 10.0, rng);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 50; ++j) {
            EXPECT_NEAR(inj.sx(i, j), 1000.0, 60.0);  // 6 sigma
        }
    }
}

TEST(FaultInjector, TooManyFaultsRejected) {
    Rng rng(8);
    const Matrix x(4, 10, 0.0);
    const Matrix y(4, 10, 0.0);
    Rng mask_rng(9);
    const Matrix existence = make_existence_mask(4, 10, 0.5, mask_rng);
    EXPECT_THROW(
        inject_faults(x, y, existence, 0.8, 1000.0, 2000.0, 0.0, rng),
        Error);
}

TEST(VelocityFaults, ExactCountAndScaleRange) {
    Rng rng(10);
    const Matrix vx(6, 30, 10.0);
    const Matrix vy(6, 30, -5.0);
    const VelocityFaults vf = inject_velocity_faults(vx, vy, 0.25, rng);
    EXPECT_EQ(count_equal(vf.faulted, 1.0),
              static_cast<std::size_t>(std::llround(0.25 * 6 * 30)));
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = 0; j < 30; ++j) {
            if (vf.faulted(i, j) == 1.0) {
                const double factor = vf.vx(i, j) / 10.0;
                EXPECT_GE(factor, 0.0);
                EXPECT_LE(factor, 2.0);
                // Both components scaled by the same factor.
                EXPECT_NEAR(vf.vy(i, j) / -5.0, factor, 1e-12);
            } else {
                EXPECT_DOUBLE_EQ(vf.vx(i, j), 10.0);
                EXPECT_DOUBLE_EQ(vf.vy(i, j), -5.0);
            }
        }
    }
}

TEST(Scenario, ConfigValidation) {
    CorruptionConfig config;
    EXPECT_NO_THROW(config.validate());
    config.missing_ratio = 0.7;
    config.fault_ratio = 0.5;  // alpha + beta > 1
    EXPECT_THROW(config.validate(), Error);
    config = CorruptionConfig{};
    config.fault_bias_min_m = 5000.0;
    config.fault_bias_max_m = 1000.0;
    EXPECT_THROW(config.validate(), Error);
    config = CorruptionConfig{};
    config.noise_sigma_m = -1.0;
    EXPECT_THROW(config.validate(), Error);
}

TEST(Scenario, EndToEndBookkeeping) {
    const TraceDataset truth = make_small_dataset(11, 12, 40);
    CorruptionConfig config;
    config.missing_ratio = 0.3;
    config.fault_ratio = 0.2;
    config.velocity_fault_ratio = 0.1;
    config.seed = 77;
    const CorruptedDataset data = corrupt(truth, config);

    EXPECT_EQ(data.participants(), 12u);
    EXPECT_EQ(data.slots(), 40u);
    EXPECT_DOUBLE_EQ(missing_fraction(data.existence), 0.3);
    EXPECT_DOUBLE_EQ(fault_fraction(data.fault), 0.2);
    EXPECT_DOUBLE_EQ(data.tau_s, truth.tau_s);

    // Eq. (6): S = X ∘ ℰ + faults; normal observed cells stay near truth.
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < 40; ++j) {
            if (data.existence(i, j) == 0.0) {
                EXPECT_DOUBLE_EQ(data.sx(i, j), 0.0);
            } else if (data.fault(i, j) == 0.0) {
                EXPECT_NEAR(data.sx(i, j), truth.x(i, j), 80.0);
            } else {
                const double offset = std::hypot(
                    data.sx(i, j) - truth.x(i, j),
                    data.sy(i, j) - truth.y(i, j));
                EXPECT_GE(offset, config.fault_bias_min_m - 1e-6);
            }
        }
    }
}

TEST(Scenario, DeterministicInSeed) {
    const TraceDataset truth = make_small_dataset(12, 8, 30);
    CorruptionConfig config;
    config.missing_ratio = 0.2;
    config.fault_ratio = 0.2;
    config.seed = 5;
    const CorruptedDataset a = corrupt(truth, config);
    const CorruptedDataset b = corrupt(truth, config);
    EXPECT_TRUE(a.sx == b.sx);
    EXPECT_TRUE(a.fault == b.fault);
    config.seed = 6;
    const CorruptedDataset c = corrupt(truth, config);
    EXPECT_FALSE(a.sx == c.sx);
}

TEST(DriftFaults, ExactCountAndMagnitudes) {
    Rng rng(20);
    const Matrix x(10, 60, 50000.0);
    const Matrix y(10, 60, 50000.0);
    const Matrix existence = Matrix::constant(10, 60, 1.0);
    const FaultInjection inj = inject_drift_faults(
        x, y, existence, 0.2, 3000.0, 10000.0, 0.0, 6.0, rng);
    EXPECT_EQ(count_equal(inj.fault, 1.0),
              static_cast<std::size_t>(std::llround(0.2 * 600)));
    // Every fault cell is km-scale away from truth.
    for (std::size_t i = 0; i < 10; ++i) {
        for (std::size_t j = 0; j < 60; ++j) {
            if (inj.fault(i, j) == 1.0) {
                const double offset =
                    std::hypot(inj.sx(i, j) - 50000.0,
                               inj.sy(i, j) - 50000.0);
                EXPECT_GT(offset, 1000.0);
            }
        }
    }
}

TEST(DriftFaults, FaultsArriveInBursts) {
    Rng rng(21);
    const Matrix x(10, 100, 0.0);
    const Matrix y(10, 100, 0.0);
    const Matrix existence = Matrix::constant(10, 100, 1.0);
    const FaultInjection inj = inject_drift_faults(
        x, y, existence, 0.15, 3000.0, 10000.0, 0.0, 8.0, rng);
    // Count fault cells whose temporal neighbour is also faulty; bursts
    // make this fraction much higher than under independent placement.
    std::size_t adjacent = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        for (std::size_t j = 0; j < 100; ++j) {
            if (inj.fault(i, j) != 1.0) {
                continue;
            }
            ++total;
            const bool left = j > 0 && inj.fault(i, j - 1) == 1.0;
            const bool right = j + 1 < 100 && inj.fault(i, j + 1) == 1.0;
            if (left || right) {
                ++adjacent;
            }
        }
    }
    EXPECT_GT(static_cast<double>(adjacent) / static_cast<double>(total),
              0.6);
}

TEST(DriftFaults, ScenarioIntegration) {
    const TraceDataset truth = make_small_dataset(22, 12, 60);
    CorruptionConfig config;
    config.missing_ratio = 0.1;
    config.fault_ratio = 0.2;
    config.fault_model = FaultModel::kDrift;
    config.seed = 8;
    const CorruptedDataset data = corrupt(truth, config);
    EXPECT_NEAR(fault_fraction(data.fault), 0.2, 0.02);
    config.drift_mean_slots = 0.5;  // invalid
    EXPECT_THROW(config.validate(), Error);
}

// Property sweep: mask/fault ratios are exact across the (α, β) grid.
class ScenarioProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ScenarioProperty, RatiosExact) {
    const auto [alpha, beta] = GetParam();
    const TraceDataset truth = make_small_dataset(13, 10, 30);
    CorruptionConfig config;
    config.missing_ratio = alpha;
    config.fault_ratio = beta;
    config.seed = 123;
    const CorruptedDataset data = corrupt(truth, config);
    EXPECT_NEAR(missing_fraction(data.existence), alpha, 0.002);
    EXPECT_NEAR(fault_fraction(data.fault), beta, 0.002);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenarioProperty,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3, 0.5),
                       ::testing::Values(0.0, 0.1, 0.3, 0.5)));

}  // namespace
}  // namespace mcs
