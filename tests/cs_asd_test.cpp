// Tests for the ASD solver, the warm start, and the Cholesky/QR helpers
// behind the scaled variant.
#include "cs/asd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "cs/init.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/ops.hpp"
#include "linalg/qr.hpp"

namespace mcs {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     double scale = 1.0) {
    Matrix m(rows, cols);
    for (auto& x : m.data()) {
        x = rng.uniform(-scale, scale);
    }
    return m;
}

TEST(Cholesky, FactorisesSpdMatrix) {
    const Matrix a{{4, 2}, {2, 3}};
    const Matrix l = cholesky(a);
    EXPECT_TRUE(approx_equal(multiply_transposed(l, l), a, 1e-12));
    EXPECT_DOUBLE_EQ(l(0, 1), 0.0);  // lower triangular
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
    EXPECT_THROW(cholesky(Matrix{{1, 2}, {2, 1}}), Error);
    EXPECT_THROW(cholesky(Matrix(2, 3)), Error);
}

TEST(Cholesky, SolveSpdMatchesDirectCheck) {
    Rng rng(1);
    const Matrix g = random_matrix(5, 5, rng);
    const Matrix a = gram_with_ridge(g, 0.5);  // SPD by construction
    const Matrix b = random_matrix(5, 3, rng);
    const Matrix x = solve_spd(a, b);
    EXPECT_TRUE(approx_equal(multiply(a, x), b, 1e-9));
}

TEST(Cholesky, GramWithRidge) {
    const Matrix a{{1, 0}, {0, 2}, {1, 1}};
    const Matrix g = gram_with_ridge(a, 0.1);
    EXPECT_NEAR(g(0, 0), 2.1, 1e-12);
    EXPECT_NEAR(g(1, 1), 5.1, 1e-12);
    EXPECT_NEAR(g(0, 1), 1.0, 1e-12);
    EXPECT_THROW(gram_with_ridge(a, -0.1), Error);
}

TEST(Qr, OrthonormalisesFullRankInput) {
    Rng rng(2);
    const Matrix a = random_matrix(8, 4, rng);
    const Matrix q = orthonormalize_columns(a);
    const Matrix gram = transpose_multiply(q, q);
    EXPECT_TRUE(approx_equal(gram, Matrix::identity(4), 1e-10));
}

TEST(Qr, DropsDependentColumns) {
    Matrix a(5, 2);
    for (std::size_t i = 0; i < 5; ++i) {
        a(i, 0) = static_cast<double>(i + 1);
        a(i, 1) = 2.0 * static_cast<double>(i + 1);  // same direction
    }
    const Matrix q = orthonormalize_columns(a);
    // Second column collapses to zero.
    double norm1 = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
        norm1 += q(i, 1) * q(i, 1);
    }
    EXPECT_NEAR(norm1, 0.0, 1e-12);
}

TEST(NearestFill, FillsFromNearestTrustedSlot) {
    const Matrix s{{10, 0, 0, 40, 0}};
    const Matrix mask{{1, 0, 0, 1, 0}};
    const Matrix filled = nearest_fill(s, mask);
    EXPECT_DOUBLE_EQ(filled(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(filled(0, 1), 10.0);  // closer to slot 0
    EXPECT_DOUBLE_EQ(filled(0, 2), 40.0);  // closer to slot 3
    EXPECT_DOUBLE_EQ(filled(0, 3), 40.0);
    EXPECT_DOUBLE_EQ(filled(0, 4), 40.0);  // trailing gap
}

TEST(NearestFill, TiePrefersEarlierSlot) {
    const Matrix s{{10, 0, 30}};
    const Matrix mask{{1, 0, 1}};
    const Matrix filled = nearest_fill(s, mask);
    EXPECT_DOUBLE_EQ(filled(0, 1), 10.0);
}

TEST(NearestFill, EmptyRowBecomesZero) {
    const Matrix s{{5, 6}, {7, 8}};
    const Matrix mask{{0, 0}, {1, 1}};
    const Matrix filled = nearest_fill(s, mask);
    EXPECT_DOUBLE_EQ(filled(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(filled(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(filled(1, 0), 7.0);
}

// Build a completion problem with known low-rank ground truth.
struct CompletionProblem {
    Matrix truth;
    Matrix s;
    Matrix mask;
    CsObjective objective;
};

CompletionProblem make_completion(std::size_t n, std::size_t t,
                                  std::size_t rank, double observe_p,
                                  std::uint64_t seed) {
    Rng rng(seed);
    const Matrix l = random_matrix(n, rank, rng, 3.0);
    const Matrix r = random_matrix(t, rank, rng, 3.0);
    Matrix truth = multiply_transposed(l, r);
    Matrix mask(n, t);
    for (auto& x : mask.data()) {
        x = rng.bernoulli(observe_p) ? 1.0 : 0.0;
    }
    Matrix s = hadamard(truth, mask);
    CsObjective objective(s, mask, Matrix(), 30.0, 1e-9, 0.0,
                          TemporalMode::kNone);
    return {std::move(truth), std::move(s), std::move(mask),
            std::move(objective)};
}

TEST(Asd, ObjectiveDecreasesMonotonically) {
    auto problem = make_completion(12, 18, 3, 0.6, 3);
    const FactorPair start = warm_start(problem.s, problem.mask, 3);
    AsdOptions options;
    options.max_iterations = 50;
    options.relative_tolerance = 0.0;  // force all iterations
    const AsdResult result =
        asd_minimize(problem.objective, start.l, start.r, options);
    for (std::size_t i = 1; i < result.objective_history.size(); ++i) {
        EXPECT_LE(result.objective_history[i],
                  result.objective_history[i - 1] + 1e-9)
            << "objective increased at iteration " << i;
    }
}

TEST(Asd, PlainVariantAlsoDescends) {
    auto problem = make_completion(10, 14, 2, 0.7, 4);
    const FactorPair start = warm_start(problem.s, problem.mask, 2);
    AsdOptions options;
    options.scaled = false;
    options.max_iterations = 80;
    options.relative_tolerance = 0.0;
    const AsdResult result =
        asd_minimize(problem.objective, start.l, start.r, options);
    for (std::size_t i = 1; i < result.objective_history.size(); ++i) {
        EXPECT_LE(result.objective_history[i],
                  result.objective_history[i - 1] + 1e-9);
    }
}

TEST(Asd, RecoversExactlyLowRankMatrix) {
    auto problem = make_completion(15, 20, 2, 0.75, 5);
    const FactorPair start = warm_start(problem.s, problem.mask, 2);
    AsdOptions options;
    options.max_iterations = 500;
    options.relative_tolerance = 1e-12;
    const AsdResult result =
        asd_minimize(problem.objective, start.l, start.r, options);
    const Matrix estimate = multiply_transposed(result.l, result.r);
    // Relative reconstruction error on ALL cells (including unobserved).
    const double rel = frobenius_norm(subtract(estimate, problem.truth)) /
                       frobenius_norm(problem.truth);
    EXPECT_LT(rel, 0.05);
}

TEST(Asd, ScaledConvergesFasterThanPlain) {
    auto problem = make_completion(15, 20, 3, 0.6, 6);
    const FactorPair start = warm_start(problem.s, problem.mask, 3);
    AsdOptions scaled;
    scaled.max_iterations = 400;
    scaled.relative_tolerance = 1e-9;
    AsdOptions plain = scaled;
    plain.scaled = false;
    const AsdResult fast =
        asd_minimize(problem.objective, start.l, start.r, scaled);
    const AsdResult slow =
        asd_minimize(problem.objective, start.l, start.r, plain);
    EXPECT_LE(fast.iterations, slow.iterations);
}

TEST(Asd, ReportsConvergence) {
    auto problem = make_completion(8, 10, 2, 0.9, 7);
    const FactorPair start = warm_start(problem.s, problem.mask, 2);
    AsdOptions options;
    options.max_iterations = 300;
    options.relative_tolerance = 1e-8;
    const AsdResult result =
        asd_minimize(problem.objective, start.l, start.r, options);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.iterations, 300u);
    EXPECT_EQ(result.objective_history.size(), result.iterations + 1);
}

TEST(Asd, ShapeValidation) {
    auto problem = make_completion(8, 10, 2, 0.9, 8);
    EXPECT_THROW(
        asd_minimize(problem.objective, Matrix(7, 2), Matrix(10, 2), {}),
        Error);
    EXPECT_THROW(
        asd_minimize(problem.objective, Matrix(8, 2), Matrix(10, 3), {}),
        Error);
}

// Property sweep: SPD solve correctness across random sizes and ridges.
class CholeskyProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(CholeskyProperty, SolveSatisfiesSystem) {
    const auto [size, ridge] = GetParam();
    Rng rng(size * 7 + 1);
    const Matrix g = random_matrix(size + 3, size, rng);
    const Matrix a = gram_with_ridge(g, ridge);
    const Matrix b = random_matrix(size, 2, rng);
    const Matrix x = solve_spd(a, b);
    EXPECT_TRUE(approx_equal(multiply(a, x), b, 1e-8))
        << "size " << size << " ridge " << ridge;
    // Factor check: L·Lᵀ == A.
    const Matrix l = cholesky(a);
    EXPECT_TRUE(approx_equal(multiply_transposed(l, l), a, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CholeskyProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 12, 24),
                       ::testing::Values(1e-6, 1.0, 100.0)));

// Property sweep: ASD monotone descent across ranks and observation rates.
class AsdDescentProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(AsdDescentProperty, MonotoneAndConvergent) {
    const auto [rank, observe_p] = GetParam();
    auto problem = make_completion(14, 22, rank, observe_p,
                                   rank * 31 + 5);
    const FactorPair start = warm_start(problem.s, problem.mask, rank);
    AsdOptions options;
    options.max_iterations = 150;
    options.relative_tolerance = 1e-9;
    const AsdResult result =
        asd_minimize(problem.objective, start.l, start.r, options);
    for (std::size_t i = 1; i < result.objective_history.size(); ++i) {
        EXPECT_LE(result.objective_history[i],
                  result.objective_history[i - 1] + 1e-9);
    }
    EXPECT_LT(result.objective_history.back(),
              result.objective_history.front() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    RankAndDensity, AsdDescentProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values(0.4, 0.6, 0.9)));

}  // namespace
}  // namespace mcs
