// Tests for the LRSD (low-rank + sparse) baseline.
#include "cs/lrsd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "corruption/scenario.hpp"
#include "eval/methods.hpp"
#include "linalg/ops.hpp"
#include "metrics/confusion.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

TEST(Lrsd, RecoversSparseOutliersOnLowRankData) {
    // Exactly low-rank data + a few huge spikes: the decomposition must
    // pin the spikes in the sparse component and complete the rest.
    Rng rng(1);
    Matrix l(20, 3);
    Matrix r(60, 3);
    for (auto& v : l.data()) {
        v = rng.uniform(-20000.0, 20000.0);
    }
    for (auto& v : r.data()) {
        v = rng.uniform(-1.0, 1.0);
    }
    const Matrix truth = multiply_transposed(l, r);
    Matrix s = truth;
    Matrix expected(20, 60);
    for (const auto& [i, j] : {std::pair<std::size_t, std::size_t>{2, 10},
                               {7, 33}, {15, 50}}) {
        s(i, j) += 25000.0;
        expected(i, j) = 1.0;
    }
    const Matrix existence = Matrix::constant(20, 60, 1.0);
    LrsdConfig config;
    config.completion.rank = 3;
    // Row centering adds one rank to the centered matrix; disable it so
    // the rank-3 completion of this exactly-rank-3 fixture is exact.
    config.completion.center_rows = false;
    const LrsdResult result = lrsd_decompose(s, existence, 30.0, config);
    EXPECT_TRUE(result.outliers == expected);
    EXPECT_TRUE(result.converged);
}

TEST(Lrsd, HandlesMissingValues) {
    const TraceDataset truth = make_small_dataset(2, 20, 80);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.3;
    corruption.fault_ratio = 0.1;
    const CorruptedDataset data = corrupt(truth, corruption);
    const LrsdResult result =
        lrsd_decompose(data.sx, data.existence, data.tau_s, LrsdConfig{});
    // No outlier may be declared on a missing cell.
    for (std::size_t i = 0; i < 20; ++i) {
        for (std::size_t j = 0; j < 80; ++j) {
            if (data.existence(i, j) == 0.0) {
                EXPECT_DOUBLE_EQ(result.outliers(i, j), 0.0);
            }
        }
    }
    EXPECT_GE(result.iterations, 2u);
}

TEST(Lrsd, DetectsMostInjectedFaults) {
    const TraceDataset truth = make_small_dataset(3, 24, 80);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.2;
    corruption.fault_ratio = 0.2;
    const CorruptedDataset data = corrupt(truth, corruption);
    MethodSettings settings;
    const MethodResult result =
        run_method(Method::kLrsd, data, settings);
    const ConfusionCounts counts =
        evaluate_detection(result.detection, data.fault, data.existence);
    // LRSD finds nearly all faults (the annealing evicts km-scale
    // outliers reliably) but pays heavily in precision — plain low-rank
    // completion is too loose for residual thresholding to clear normal
    // cells. This is the baseline's documented weakness (EXPERIMENTS.md).
    EXPECT_GE(counts.recall(), 0.85);
    EXPECT_GE(counts.precision(), 0.25);
}

TEST(Lrsd, ItscsBeatsLrsdOnDetectionQuality) {
    const TraceDataset truth = make_small_dataset(4, 24, 80);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.3;
    corruption.fault_ratio = 0.3;
    const CorruptedDataset data = corrupt(truth, corruption);
    MethodSettings settings;
    const MethodResult lrsd = run_method(Method::kLrsd, data, settings);
    const MethodResult itscs =
        run_method(Method::kItscsFull, data, settings);
    const ConfusionCounts c_lrsd =
        evaluate_detection(lrsd.detection, data.fault, data.existence);
    const ConfusionCounts c_itscs =
        evaluate_detection(itscs.detection, data.fault, data.existence);
    EXPECT_GE(c_itscs.f1(), c_lrsd.f1());
}

TEST(Lrsd, Validation) {
    const Matrix s(4, 10);
    const Matrix existence = Matrix::constant(4, 10, 1.0);
    LrsdConfig config;
    config.residual_threshold_m = 0.0;
    EXPECT_THROW(lrsd_decompose(s, existence, 30.0, config), Error);
    config = LrsdConfig{};
    config.max_iterations = 0;
    EXPECT_THROW(lrsd_decompose(s, existence, 30.0, config), Error);
    EXPECT_THROW(lrsd_decompose(s, Matrix(3, 10), 30.0, LrsdConfig{}),
                 Error);
}

TEST(Lrsd, MethodRegistryIntegration) {
    EXPECT_EQ(to_string(Method::kLrsd), "LRSD");
    EXPECT_TRUE(reconstructs(Method::kLrsd));
}

}  // namespace
}  // namespace mcs
