// Tests for the modified-CS objective: values, analytic gradients checked
// against finite differences, and exact line searches.
#include "cs/objective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "linalg/ops.hpp"

namespace mcs {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     double scale = 1.0) {
    Matrix m(rows, cols);
    for (auto& x : m.data()) {
        x = rng.uniform(-scale, scale);
    }
    return m;
}

struct Problem {
    Matrix s;
    Matrix gbim;
    Matrix velocity;
    Matrix l;
    Matrix r;
};

Problem make_problem(std::size_t n, std::size_t t, std::size_t rank,
                     std::uint64_t seed) {
    Rng rng(seed);
    Problem p;
    p.s = random_matrix(n, t, rng, 100.0);
    p.gbim = Matrix(n, t);
    for (auto& x : p.gbim.data()) {
        x = rng.bernoulli(0.7) ? 1.0 : 0.0;
    }
    p.velocity = random_matrix(n, t, rng, 5.0);
    p.l = random_matrix(n, rank, rng, 2.0);
    p.r = random_matrix(t, rank, rng, 2.0);
    return p;
}

// Central finite-difference gradient check for one entry.
double fd_gradient_l(const CsObjective& objective, Problem p, std::size_t i,
                     std::size_t k, double h) {
    Matrix plus = p.l;
    plus(i, k) += h;
    Matrix minus = p.l;
    minus(i, k) -= h;
    return (objective.value(plus, p.r) - objective.value(minus, p.r)) /
           (2.0 * h);
}

double fd_gradient_r(const CsObjective& objective, Problem p, std::size_t j,
                     std::size_t k, double h) {
    Matrix plus = p.r;
    plus(j, k) += h;
    Matrix minus = p.r;
    minus(j, k) -= h;
    return (objective.value(p.l, plus) - objective.value(p.l, minus)) /
           (2.0 * h);
}

TEST(CsObjective, ValueIsSumOfThreeTerms) {
    Problem p = make_problem(6, 10, 3, 1);
    const CsObjective with_all(p.s, p.gbim, p.velocity, 30.0, 0.5, 0.25,
                               TemporalMode::kVelocity);
    const CsObjective no_temporal(p.s, p.gbim, p.velocity, 30.0, 0.5, 0.25,
                                  TemporalMode::kNone);
    const CsObjective no_reg(p.s, p.gbim, p.velocity, 30.0, 0.0, 0.0,
                             TemporalMode::kNone);
    const double f_all = with_all.value(p.l, p.r);
    const double f_fit_reg = no_temporal.value(p.l, p.r);
    const double f_fit = no_reg.value(p.l, p.r);
    EXPECT_GT(f_all, f_fit_reg);
    EXPECT_GT(f_fit_reg, f_fit);
    // f2 contribution is exactly λ1(‖L‖² + ‖R‖²).
    EXPECT_NEAR(f_fit_reg - f_fit,
                0.5 * (frobenius_norm_squared(p.l) +
                       frobenius_norm_squared(p.r)),
                1e-8);
}

TEST(CsObjective, PerfectFitZeroObjective) {
    // S = (L·Rᵀ)∘ℬ with λ's zero -> objective is exactly 0.
    Rng rng(2);
    const Matrix l = random_matrix(5, 2, rng);
    const Matrix r = random_matrix(8, 2, rng);
    Matrix gbim(5, 8);
    for (auto& x : gbim.data()) {
        x = rng.bernoulli(0.5) ? 1.0 : 0.0;
    }
    const Matrix s = hadamard(multiply_transposed(l, r), gbim);
    const CsObjective objective(s, gbim, Matrix(), 30.0, 0.0, 0.0,
                                TemporalMode::kNone);
    EXPECT_NEAR(objective.value(l, r), 0.0, 1e-18);
}

class GradientProperty : public ::testing::TestWithParam<int> {};

TEST_P(GradientProperty, AnalyticMatchesFiniteDifferenceL) {
    const auto mode = static_cast<TemporalMode>(GetParam() % 3);
    Problem p = make_problem(5, 9, 3, 100 + GetParam());
    const CsObjective objective(p.s, p.gbim, p.velocity, 30.0, 0.3, 0.2,
                                mode);
    const Matrix grad = objective.gradient_l(p.l, p.r);
    for (const auto& [i, k] :
         {std::pair<std::size_t, std::size_t>{0, 0}, {2, 1}, {4, 2}}) {
        const double fd = fd_gradient_l(objective, p, i, k, 1e-5);
        EXPECT_NEAR(grad(i, k), fd, 1e-3 * std::max(1.0, std::abs(fd)))
            << "mode " << GetParam() % 3 << " entry (" << i << "," << k
            << ")";
    }
}

TEST_P(GradientProperty, AnalyticMatchesFiniteDifferenceR) {
    const auto mode = static_cast<TemporalMode>(GetParam() % 3);
    Problem p = make_problem(5, 9, 3, 200 + GetParam());
    const CsObjective objective(p.s, p.gbim, p.velocity, 30.0, 0.3, 0.2,
                                mode);
    const Matrix grad = objective.gradient_r(p.l, p.r);
    for (const auto& [j, k] :
         {std::pair<std::size_t, std::size_t>{0, 0}, {4, 1}, {8, 2}}) {
        const double fd = fd_gradient_r(objective, p, j, k, 1e-5);
        EXPECT_NEAR(grad(j, k), fd, 1e-3 * std::max(1.0, std::abs(fd)));
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, GradientProperty,
                         ::testing::Range(0, 9));

TEST(CsObjective, ExactStepMinimisesAlongGradient) {
    Problem p = make_problem(6, 10, 3, 3);
    const CsObjective objective(p.s, p.gbim, p.velocity, 30.0, 0.1, 0.1,
                                TemporalMode::kVelocity);
    const Matrix grad = objective.gradient_l(p.l, p.r);
    const double alpha = objective.exact_step_l(p.l, p.r, grad);
    ASSERT_GT(alpha, 0.0);
    const auto value_at = [&](double a) {
        Matrix moved = p.l;
        Matrix step = grad;
        step *= a;
        moved -= step;
        return objective.value(moved, p.r);
    };
    const double at_opt = value_at(alpha);
    EXPECT_LT(at_opt, objective.value(p.l, p.r));
    // Quadratic optimality: nearby alphas are worse.
    EXPECT_LE(at_opt, value_at(alpha * 0.8));
    EXPECT_LE(at_opt, value_at(alpha * 1.2));
}

TEST(CsObjective, LineSearchDecreaseIsExact) {
    Problem p = make_problem(6, 10, 3, 4);
    const CsObjective objective(p.s, p.gbim, p.velocity, 30.0, 0.1, 0.1,
                                TemporalMode::kVelocity);
    const auto res = objective.residuals(p.l, p.r);
    const Matrix grad = objective.gradient_l_from(res, p.l, p.r);
    const auto step = objective.line_search_l(res, p.l, p.r, grad);
    Matrix moved = p.l;
    Matrix delta = grad;
    delta *= step.alpha;
    moved -= delta;
    const double actual_decrease =
        objective.value(p.l, p.r) - objective.value(moved, p.r);
    EXPECT_NEAR(actual_decrease, step.decrease,
                1e-9 * std::max(1.0, step.decrease));
}

TEST(CsObjective, ResidualsMatchDefinitions) {
    Problem p = make_problem(4, 7, 2, 5);
    const CsObjective objective(p.s, p.gbim, p.velocity, 30.0, 0.1, 0.1,
                                TemporalMode::kVelocity);
    const auto res = objective.residuals(p.l, p.r);
    const Matrix expected_m =
        subtract(hadamard(multiply_transposed(p.l, p.r), p.gbim),
                 hadamard(p.s, p.gbim));
    EXPECT_TRUE(approx_equal(res.m, expected_m, 1e-10));
    EXPECT_EQ(res.e3.rows(), 4u);
    EXPECT_EQ(res.e3.cols(), 7u);
}

TEST(CsObjective, ZeroDirectionGivesZeroStep) {
    Problem p = make_problem(4, 7, 2, 6);
    const CsObjective objective(p.s, p.gbim, p.velocity, 30.0, 0.0, 0.0,
                                TemporalMode::kNone);
    const Matrix zero(4, 2);
    EXPECT_DOUBLE_EQ(objective.exact_step_l(p.l, p.r, zero), 0.0);
}

TEST(CsObjective, MasksSensoryValuesAtUntrustedCells) {
    Problem p = make_problem(4, 7, 2, 7);
    const CsObjective objective(p.s, p.gbim, p.velocity, 30.0, 0.0, 0.0,
                                TemporalMode::kNone);
    const Matrix& masked = objective.masked_sensory();
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 7; ++j) {
            if (p.gbim(i, j) == 0.0) {
                EXPECT_DOUBLE_EQ(masked(i, j), 0.0);
            } else {
                EXPECT_DOUBLE_EQ(masked(i, j), p.s(i, j));
            }
        }
    }
}

TEST(CsObjective, InvalidInputsRejected) {
    Problem p = make_problem(4, 7, 2, 8);
    EXPECT_THROW(CsObjective(p.s, Matrix(3, 7), p.velocity, 30.0, 0.1, 0.1,
                             TemporalMode::kNone),
                 Error);
    EXPECT_THROW(CsObjective(p.s, p.gbim, p.velocity, 30.0, -0.1, 0.1,
                             TemporalMode::kNone),
                 Error);
    EXPECT_THROW(CsObjective(p.s, p.gbim, Matrix(1, 1), 30.0, 0.1, 0.1,
                             TemporalMode::kVelocity),
                 Error);
    Matrix bad_gbim = p.gbim;
    bad_gbim(0, 0) = 0.5;
    EXPECT_THROW(CsObjective(p.s, bad_gbim, p.velocity, 30.0, 0.1, 0.1,
                             TemporalMode::kNone),
                 Error);
}

}  // namespace
}  // namespace mcs
