// Tests for CS_Reconstruct (Algorithm 2) and the interpolation baselines.
#include "cs/reconstruct.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "corruption/existence.hpp"
#include "corruption/scenario.hpp"
#include "cs/interpolation.hpp"
#include "linalg/ops.hpp"
#include "linalg/temporal.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

struct ReconstructionCase {
    TraceDataset truth;
    CorruptedDataset data;
    Matrix avg_vx;
};

ReconstructionCase make_case(double alpha, std::uint64_t seed) {
    ReconstructionCase c{make_small_dataset(seed, 24, 80), {}, {}};
    CorruptionConfig config;
    config.missing_ratio = alpha;
    config.seed = seed + 1;
    c.data = corrupt(c.truth, config);
    c.avg_vx = average_velocity(c.data.vx);
    return c;
}

double mae_on_missing(const Matrix& estimate, const Matrix& truth,
                      const Matrix& existence) {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < truth.rows(); ++i) {
        for (std::size_t j = 0; j < truth.cols(); ++j) {
            if (existence(i, j) == 0.0) {
                total += std::abs(estimate(i, j) - truth(i, j));
                ++count;
            }
        }
    }
    return count > 0 ? total / static_cast<double>(count) : 0.0;
}

TEST(CsReconstruct, FillsMissingValuesAccurately) {
    auto c = make_case(0.2, 1);
    CsConfig config;  // auto rank, velocity mode
    const CsReconstruction rec = cs_reconstruct(
        c.data.sx, c.data.existence, c.avg_vx, c.truth.tau_s, config);
    const double mae =
        mae_on_missing(rec.estimate, c.truth.x, c.data.existence);
    // The small dataset is intentionally hard; sub-kilometre MAE is the
    // calibrated expectation (paper-scale fleets reach ~150 m).
    EXPECT_LT(mae, 800.0);
    // Observed cells are fitted much more tightly than missing ones.
    double obs_total = 0.0;
    std::size_t obs_count = 0;
    for (std::size_t i = 0; i < c.truth.participants(); ++i) {
        for (std::size_t j = 0; j < c.truth.slots(); ++j) {
            if (c.data.existence(i, j) == 1.0) {
                obs_total += std::abs(rec.estimate(i, j) - c.truth.x(i, j));
                ++obs_count;
            }
        }
    }
    EXPECT_LT(obs_total / static_cast<double>(obs_count), mae);
}

TEST(CsReconstruct, VelocityModeBeatsPlainOnThisData) {
    auto c = make_case(0.3, 2);
    CsConfig plain;
    plain.mode = TemporalMode::kNone;
    CsConfig velocity;
    velocity.mode = TemporalMode::kVelocity;
    const double mae_plain =
        mae_on_missing(cs_reconstruct(c.data.sx, c.data.existence, c.avg_vx,
                                      c.truth.tau_s, plain)
                           .estimate,
                       c.truth.x, c.data.existence);
    const double mae_velocity =
        mae_on_missing(cs_reconstruct(c.data.sx, c.data.existence, c.avg_vx,
                                      c.truth.tau_s, velocity)
                           .estimate,
                       c.truth.x, c.data.existence);
    EXPECT_LT(mae_velocity, mae_plain);
}

TEST(CsReconstruct, WarmStartReusesFactors) {
    auto c = make_case(0.2, 3);
    CsConfig config;
    const CsReconstruction first = cs_reconstruct(
        c.data.sx, c.data.existence, c.avg_vx, c.truth.tau_s, config);
    // Re-solving from the converged factors takes (almost) no iterations.
    const CsReconstruction second =
        cs_reconstruct(c.data.sx, c.data.existence, c.avg_vx, c.truth.tau_s,
                       config, &first.factors);
    EXPECT_LE(second.asd_iterations, first.asd_iterations / 2 + 2);
    EXPECT_TRUE(approx_equal(second.estimate, first.estimate, 50.0));
}

TEST(CsReconstruct, MismatchedWarmStartIgnored) {
    auto c = make_case(0.2, 4);
    CsConfig config;
    FactorPair wrong{Matrix(3, 2), Matrix(5, 2)};
    EXPECT_NO_THROW(cs_reconstruct(c.data.sx, c.data.existence, c.avg_vx,
                                   c.truth.tau_s, config, &wrong));
}

TEST(CsReconstruct, AutoRankMatchesRecommendation) {
    EXPECT_EQ(recommended_rank(158, 240), 40u);
    EXPECT_EQ(recommended_rank(158, 240, TemporalMode::kNone), 16u);
    EXPECT_EQ(recommended_rank(40, 120), 13u);
    EXPECT_EQ(recommended_rank(6, 100), 4u);   // heuristic floor
    EXPECT_EQ(recommended_rank(2, 100), 2u);
}

TEST(CsReconstruct, RankValidation) {
    auto c = make_case(0.1, 5);
    CsConfig config;
    config.rank = 1000;  // > min(n, t)
    EXPECT_THROW(cs_reconstruct(c.data.sx, c.data.existence, c.avg_vx,
                                c.truth.tau_s, config),
                 Error);
}

TEST(CsReconstruct, CenteringChangesNothingStructurally) {
    auto c = make_case(0.2, 6);
    CsConfig centered;
    centered.center_rows = true;
    CsConfig raw;
    raw.center_rows = false;
    const double mae_centered =
        mae_on_missing(cs_reconstruct(c.data.sx, c.data.existence, c.avg_vx,
                                      c.truth.tau_s, centered)
                           .estimate,
                       c.truth.x, c.data.existence);
    const double mae_raw =
        mae_on_missing(cs_reconstruct(c.data.sx, c.data.existence, c.avg_vx,
                                      c.truth.tau_s, raw)
                           .estimate,
                       c.truth.x, c.data.existence);
    // Same model, different conditioning: results stay in the same regime.
    EXPECT_LT(std::abs(mae_centered - mae_raw),
              std::max(200.0, 0.5 * mae_raw));
}

TEST(Interpolation, LinearInterpolatesInteriorGaps) {
    const Matrix s{{10, 0, 0, 40}};
    const Matrix mask{{1, 0, 0, 1}};
    const Matrix filled = linear_interpolate(s, mask);
    EXPECT_DOUBLE_EQ(filled(0, 1), 20.0);
    EXPECT_DOUBLE_EQ(filled(0, 2), 30.0);
}

TEST(Interpolation, LinearHoldsBoundaries) {
    const Matrix s{{0, 10, 0}};
    const Matrix mask{{0, 1, 0}};
    const Matrix filled = linear_interpolate(s, mask);
    EXPECT_DOUBLE_EQ(filled(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(filled(0, 2), 10.0);
}

TEST(Interpolation, LinearEmptyRowZero) {
    const Matrix s{{5, 5}};
    const Matrix mask{{0, 0}};
    const Matrix filled = linear_interpolate(s, mask);
    EXPECT_DOUBLE_EQ(filled(0, 0), 0.0);
}

TEST(Interpolation, CsBeatsInterpolationUnderBurstOutages) {
    // The paper's motivation for CS over interpolation [21]. On *uniform*
    // random drops, bridging a 1–2-slot gap linearly is nearly optimal on
    // smooth trajectories; the realistic MCS failure mode is a device
    // outage — a long contiguous gap — where interpolation has nothing to
    // anchor on and the low-rank structure wins.
    const TraceDataset truth = make_small_dataset(7, 24, 80);
    Rng rng(42);
    const Matrix existence =
        make_burst_existence_mask(24, 80, 0.4, 12.0, rng);
    const Matrix s = hadamard(truth.x, existence);
    const Matrix linear = linear_interpolate(s, existence);
    const double mae_linear =
        mae_on_missing(linear, truth.x, existence);
    CsConfig config;
    const double mae_cs = mae_on_missing(
        cs_reconstruct(s, existence, average_velocity(truth.vx),
                       truth.tau_s, config)
            .estimate,
        truth.x, existence);
    EXPECT_LT(mae_cs, mae_linear);
}

}  // namespace
}  // namespace mcs
