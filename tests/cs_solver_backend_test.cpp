// Tests for the SolverBackend seam (DESIGN.md §14): the registry, ASD
// equivalence through solve_axis, the LRSD backend's sparse-fault support,
// warm-start factor reuse across framework-style iterations, and the
// lrsd_decompose temporal-mode guard.
#include "cs/solver_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "corruption/scenario.hpp"
#include "cs/lrsd.hpp"
#include "linalg/ops.hpp"
#include "linalg/temporal.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

struct BackendCase {
    TraceDataset truth;
    CorruptedDataset data;
    Matrix avg_vx;
};

BackendCase make_case(std::uint64_t seed) {
    BackendCase c{make_small_dataset(seed, 24, 80), {}, {}};
    CorruptionConfig config;
    config.missing_ratio = 0.2;
    config.fault_ratio = 0.1;
    config.seed = seed + 1;
    c.data = corrupt(c.truth, config);
    c.avg_vx = average_velocity(c.data.vx);
    return c;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
    const auto da = a.data();
    const auto db = b.data();
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::equal(da.begin(), da.end(), db.begin());
}

TEST(SolverBackendRegistry, KindsNamesAndCapabilities) {
    const SolverBackend& asd = solver_backend(SolverKind::kAsd);
    EXPECT_EQ(asd.kind(), SolverKind::kAsd);
    EXPECT_STREQ(asd.name(), "asd");
    EXPECT_FALSE(asd.supports_sparse_faults());

    const SolverBackend& lrsd = solver_backend(SolverKind::kLrsd);
    EXPECT_EQ(lrsd.kind(), SolverKind::kLrsd);
    EXPECT_STREQ(lrsd.name(), "lrsd");
    EXPECT_TRUE(lrsd.supports_sparse_faults());

    // The registry hands out stable singletons.
    EXPECT_EQ(&asd, &solver_backend(SolverKind::kAsd));
    EXPECT_EQ(&lrsd, &solver_backend(SolverKind::kLrsd));
}

TEST(SolverBackendRegistry, ParseAndToStringRoundTrip) {
    EXPECT_EQ(parse_solver_kind("asd"), SolverKind::kAsd);
    EXPECT_EQ(parse_solver_kind("lrsd"), SolverKind::kLrsd);
    EXPECT_EQ(to_string(SolverKind::kAsd), "asd");
    EXPECT_EQ(to_string(SolverKind::kLrsd), "lrsd");
    EXPECT_THROW(parse_solver_kind("simplex"), Error);
}

TEST(SolverBackend, AsdThroughSeamMatchesCsReconstruct) {
    // cs_reconstruct() is a thin wrapper over solve_axis(); the two entry
    // points must agree bit for bit (the bit-identity contract of the
    // refactor rides on this).
    auto c = make_case(1);
    CsConfig config;
    const CsReconstruction direct = cs_reconstruct(
        c.data.sx, c.data.existence, c.avg_vx, c.truth.tau_s, config);

    SolverProblem problem;
    problem.s = &c.data.sx;
    problem.trusted = &c.data.existence;
    problem.avg_velocity = &c.avg_vx;
    problem.tau_s = c.truth.tau_s;
    problem.config = config;
    const CsReconstruction seam = solve_axis(problem);

    EXPECT_TRUE(bitwise_equal(seam.estimate, direct.estimate));
    EXPECT_EQ(seam.asd_iterations, direct.asd_iterations);
    EXPECT_DOUBLE_EQ(seam.final_objective, direct.final_objective);
    EXPECT_EQ(seam.solver, SolverKind::kAsd);
    EXPECT_EQ(seam.solver_rounds, 1u);
    EXPECT_TRUE(seam.sparse_faults.empty());
}

TEST(SolverBackend, AsdRequiresVelocityAndValidShapes) {
    auto c = make_case(2);
    SolverProblem problem;
    problem.s = &c.data.sx;
    problem.trusted = &c.data.existence;
    problem.tau_s = c.truth.tau_s;
    // kVelocity mode with no velocity matrix is an invalid problem.
    EXPECT_THROW(solve_axis(problem), Error);

    problem.avg_velocity = &c.avg_vx;
    problem.config.rank = 1000;  // > min(n, t)
    EXPECT_THROW(solve_axis(problem), Error);

    SolverProblem empty;
    EXPECT_THROW(solve_axis(empty), Error);
}

TEST(SolverBackend, LrsdRecoversSparseSupportThroughSolveAxis) {
    // The cs_lrsd_test fixture, driven through the seam: exactly-rank-3
    // data plus three huge spikes. The backend must return the spike
    // support in sparse_faults and tick the per-backend counters.
    Rng rng(1);
    Matrix l(20, 3);
    Matrix r(60, 3);
    for (auto& v : l.data()) {
        v = rng.uniform(-20000.0, 20000.0);
    }
    for (auto& v : r.data()) {
        v = rng.uniform(-1.0, 1.0);
    }
    const Matrix truth = multiply_transposed(l, r);
    Matrix s = truth;
    Matrix expected(20, 60);
    for (const auto& [i, j] : {std::pair<std::size_t, std::size_t>{2, 10},
                               {7, 33}, {15, 50}}) {
        s(i, j) += 25000.0;
        expected(i, j) = 1.0;
    }
    const Matrix ones = Matrix::constant(20, 60, 1.0);

    SolverProblem problem;
    problem.s = &s;
    problem.trusted = &ones;
    problem.existence = &ones;
    problem.tau_s = 30.0;
    problem.config.solver = SolverKind::kLrsd;
    problem.config.rank = 3;
    problem.config.center_rows = false;

    PipelineContext ctx;
    const CsReconstruction rec = solve_axis(problem, nullptr, &ctx);
    EXPECT_EQ(rec.solver, SolverKind::kLrsd);
    EXPECT_TRUE(rec.sparse_faults == expected);
    EXPECT_TRUE(rec.converged);
    EXPECT_GE(rec.solver_rounds, 2u);

    EXPECT_EQ(ctx.counters().solves_lrsd, 1u);
    EXPECT_EQ(ctx.counters().solves_asd, 0u);
    EXPECT_EQ(ctx.counters().lrsd_rounds, rec.solver_rounds);
    EXPECT_EQ(ctx.counters().sparse_fault_cells, 3u);
    EXPECT_EQ(ctx.solver_backend(), SolverKind::kLrsd);
}

TEST(SolverBackend, LrsdNeverFlagsUnobservedCells) {
    auto c = make_case(3);
    SolverProblem problem;
    problem.s = &c.data.sx;
    problem.trusted = &c.data.existence;
    problem.existence = &c.data.existence;
    problem.tau_s = c.truth.tau_s;
    problem.config.solver = SolverKind::kLrsd;
    const CsReconstruction rec = solve_axis(problem);
    for (std::size_t i = 0; i < c.data.participants(); ++i) {
        for (std::size_t j = 0; j < c.data.slots(); ++j) {
            if (c.data.existence(i, j) == 0.0) {
                EXPECT_DOUBLE_EQ(rec.sparse_faults(i, j), 0.0);
            }
        }
    }
}

TEST(SolverBackend, WarmFactorsSpeedUpFrameworkStyleIteration) {
    // The framework loop re-solves CORRECT each iteration with a slightly
    // changed trust mask, feeding the previous CsReconstruction::factors
    // back in. Simulate one such step: distrust a handful of cells, then
    // solve cold vs. warm. Warm must take materially fewer ASD iterations
    // and land on the same reconstruction.
    auto c = make_case(4);
    CsConfig config;
    const CsReconstruction first = cs_reconstruct(
        c.data.sx, c.data.existence, c.avg_vx, c.truth.tau_s, config);

    // Next framework iteration's ℬ: a few observed cells newly distrusted.
    Matrix gbim = c.data.existence;
    std::size_t flipped = 0;
    for (std::size_t i = 0; i < gbim.rows() && flipped < 12; ++i) {
        for (std::size_t j = 0; j < gbim.cols() && flipped < 12; j += 17) {
            if (gbim(i, j) == 1.0) {
                gbim(i, j) = 0.0;
                ++flipped;
            }
        }
    }
    ASSERT_EQ(flipped, 12u);

    const CsReconstruction cold = cs_reconstruct(
        c.data.sx, gbim, c.avg_vx, c.truth.tau_s, config);
    const CsReconstruction warm =
        cs_reconstruct(c.data.sx, gbim, c.avg_vx, c.truth.tau_s, config,
                       &first.factors);

    EXPECT_LT(warm.asd_iterations, cold.asd_iterations);
    // ASD is non-convex, so warm and cold may settle in slightly different
    // spots of the same basin; what must not change is the downstream
    // metric. Compare the missing-cell MAE against truth.
    const auto mae_on_missing = [&](const Matrix& estimate) {
        double total = 0.0;
        std::size_t count = 0;
        for (std::size_t i = 0; i < estimate.rows(); ++i) {
            for (std::size_t j = 0; j < estimate.cols(); ++j) {
                if (c.data.existence(i, j) == 0.0) {
                    total += std::abs(estimate(i, j) - c.truth.x(i, j));
                    ++count;
                }
            }
        }
        return total / static_cast<double>(count);
    };
    const double cold_mae = mae_on_missing(cold.estimate);
    const double warm_mae = mae_on_missing(warm.estimate);
    EXPECT_LT(std::abs(warm_mae - cold_mae),
              std::max(25.0, 0.05 * cold_mae));
}

TEST(SolverBackend, LrsdReusesFactorsAcrossItsOwnRounds) {
    // Round 1 pays the nearest-fill SVD; later rounds warm-start from the
    // previous round's factors. The "warm_start" phase therefore runs
    // exactly once however many complete+reclassify rounds execute.
    auto c = make_case(5);
    SolverProblem problem;
    problem.s = &c.data.sx;
    problem.trusted = &c.data.existence;
    problem.existence = &c.data.existence;
    problem.tau_s = c.truth.tau_s;
    problem.config.solver = SolverKind::kLrsd;

    PipelineContext ctx;
    const CsReconstruction rec = solve_axis(problem, nullptr, &ctx);
    ASSERT_GE(rec.solver_rounds, 2u);

    std::size_t warm_start_calls = 0;
    for (const PhaseStat& phase : ctx.phase_stats()) {
        if (phase.name == "warm_start") {
            warm_start_calls = phase.calls;
        }
    }
    EXPECT_EQ(warm_start_calls, 1u);
}

TEST(SolverBackend, LrsdDecomposeRejectsTemporalCompletion) {
    // The LS-decomposition model of [18] has no temporal term; silently
    // overwriting the caller's completion.mode used to hide that. It is
    // now a reported contract violation.
    const Matrix s(8, 20);
    const Matrix existence = Matrix::constant(8, 20, 1.0);
    LrsdConfig config;
    config.completion.mode = TemporalMode::kVelocity;
    EXPECT_THROW(lrsd_decompose(s, existence, 30.0, config), Error);
    config.completion.mode = TemporalMode::kTemporalOnly;
    EXPECT_THROW(lrsd_decompose(s, existence, 30.0, config), Error);
}

TEST(SolverBackend, LrsdOptionValidation) {
    auto c = make_case(6);
    SolverProblem problem;
    problem.s = &c.data.sx;
    problem.trusted = &c.data.existence;
    problem.existence = &c.data.existence;
    problem.tau_s = c.truth.tau_s;
    problem.config.solver = SolverKind::kLrsd;

    problem.config.lrsd.residual_threshold_m = 0.0;
    EXPECT_THROW(solve_axis(problem), Error);

    problem.config.lrsd = LrsdOptions{};
    problem.config.lrsd.max_rounds = 0;
    EXPECT_THROW(solve_axis(problem), Error);

    problem.config.lrsd = LrsdOptions{};
    problem.config.lrsd.initial_threshold_m = 100.0;  // below final
    EXPECT_THROW(solve_axis(problem), Error);
}

}  // namespace
}  // namespace mcs
