// Tests for the adversary defence layer (DESIGN.md §17): the --defense
// spec grammar, the three cross-participant consistency tests (collusion,
// replay, outage), the quarantine cap, the re-test split, and the
// determinism contract the FleetRunner integration relies on.
#include "defense/defense.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "corruption/adversary.hpp"
#include "corruption/scenario.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

CorruptedDataset defense_base(std::uint64_t seed = 3) {
    const TraceDataset truth = make_small_dataset(seed, 24, 40);
    CorruptionConfig config;
    config.missing_ratio = 0.2;
    config.fault_ratio = 0.05;
    config.seed = 7;
    return corrupt(truth, config);
}

// The corroboration statistic needs honest traffic dense enough that
// honest readings actually witness each other: a tighter city than
// make_small_dataset's, with more rows and slots.
CorruptedDataset dense_base(std::uint64_t seed = 3) {
    SimulatorConfig sim;
    sim.participants = 36;
    sim.slots = 72;
    sim.seed = seed;
    sim.network.width_m = 10000.0;
    sim.network.height_m = 10000.0;
    sim.network.block_m = 1000.0;
    sim.trips.min_trip_m = 1500.0;
    sim.trips.max_trip_m = 6000.0;
    const TraceDataset truth = simulate_fleet(sim);
    CorruptionConfig config;
    config.missing_ratio = 0.1;
    config.fault_ratio = 0.05;
    config.seed = 7;
    return corrupt(truth, config);
}

AdversaryInjection attack(CorruptedDataset& data, const std::string& spec) {
    const AdversaryInjector injector(AdversarySpec::parse(spec));
    return injector.apply(data.sx, data.sy, data.vx, data.vy,
                          data.existence, data.tau_s, &data.fault);
}

bool contains(const std::vector<std::size_t>& haystack, std::size_t needle) {
    return std::find(haystack.begin(), haystack.end(), needle) !=
           haystack.end();
}

// ---- Spec grammar ------------------------------------------------------

TEST(DefenseSpec, ParsesTheFullGrammar) {
    const DefenseSpec spec = DefenseSpec::parse(
        "collusion=6.5,radius=150,replay=0.9,replayspan=12,outage=5,"
        "outagespan=15,reinstate=3,maxquarantine=0.25");
    EXPECT_DOUBLE_EQ(spec.collusion, 6.5);
    EXPECT_DOUBLE_EQ(spec.radius, 150.0);
    EXPECT_DOUBLE_EQ(spec.replay, 0.9);
    EXPECT_EQ(spec.replay_span, 12u);
    EXPECT_EQ(spec.outage, 5u);
    EXPECT_EQ(spec.outage_span, 15u);
    EXPECT_DOUBLE_EQ(spec.reinstate, 3.0);
    EXPECT_DOUBLE_EQ(spec.max_quarantine, 0.25);
}

TEST(DefenseSpec, DefaultsAreArmedAndZeroingDisarms) {
    // Unlike AdversarySpec, the empty spec is *on* — the defence defaults
    // to defending.
    EXPECT_FALSE(DefenseSpec::parse("").idle());
    EXPECT_FALSE(DefenseSpec{}.idle());
    EXPECT_FALSE(DefenseSpec::parse("collusion=0,replay=0").idle());
    EXPECT_TRUE(DefenseSpec::parse("collusion=0,replay=0,outage=0").idle());
}

TEST(DefenseSpec, UnknownKeySuggestsTheNearestOne) {
    try {
        DefenseSpec::parse("colusion=4");
        FAIL() << "expected mcs::Error";
    } catch (const Error& error) {
        EXPECT_NE(
            std::string(error.what()).find("did you mean 'collusion'"),
            std::string::npos)
            << error.what();
    }
    try {
        DefenseSpec::parse("zzzzzzzzzzzz=1");
        FAIL() << "expected mcs::Error";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("expected collusion"),
                  std::string::npos)
            << error.what();
    }
}

TEST(DefenseSpec, RejectsMalformedSpecs) {
    EXPECT_THROW(DefenseSpec::parse("collusion"), Error);
    EXPECT_THROW(DefenseSpec::parse("collusion=abc"), Error);
    EXPECT_THROW(DefenseSpec::parse("collusion=4x"), Error);
    EXPECT_THROW(DefenseSpec::parse("collusion=0.5"), Error);   // (0, 1)
    EXPECT_THROW(DefenseSpec::parse("radius=0"), Error);
    EXPECT_THROW(DefenseSpec::parse("replay=1.5"), Error);
    EXPECT_THROW(DefenseSpec::parse("replay=0.9,replayspan=0"), Error);
    EXPECT_THROW(DefenseSpec::parse("reinstate=0.5"), Error);
    EXPECT_THROW(DefenseSpec::parse("maxquarantine=0"), Error);
    EXPECT_THROW(DefenseSpec::parse("maxquarantine=1.5"), Error);
}

// ---- Replay test -------------------------------------------------------

TEST(DefenseReplay, FlagsTheLaggingCopyWithItsShiftAndVictim) {
    CorruptedDataset data = defense_base();
    const AdversaryInjection injection =
        attack(data, "replay=2,replayshift=5,seed=13");
    ASSERT_EQ(injection.replays.size(), 2u);

    // Collusion off: this test isolates the pairwise duplicate scan.
    const DefenseSuite suite(DefenseSpec::parse("collusion=0,outage=0"));
    const DefenseReport report =
        suite.analyze(data.sx, data.sy, data.existence);

    ASSERT_EQ(report.flags.size(), 2u);
    EXPECT_EQ(report.trips, 1u);
    for (const auto& [fraud, victim] : injection.replays) {
        const auto flag = std::find_if(
            report.flags.begin(), report.flags.end(),
            [&](const DefenseFlag& f) { return f.participant == fraud; });
        ASSERT_NE(flag, report.flags.end())
            << "fraud " << fraud << " not flagged";
        EXPECT_EQ(flag->test, DefenseTest::kReplay);
        EXPECT_EQ(flag->partner, victim);
        EXPECT_EQ(flag->shift, 5u);
        EXPECT_GE(flag->score, 0.995);
        // The victim is the honest party: never quarantined.
        EXPECT_FALSE(contains(report.quarantined, victim));
        EXPECT_TRUE(contains(report.quarantined, fraud));
    }
}

TEST(DefenseReplay, CleanFleetRaisesNoReplayFlags) {
    CorruptedDataset data = defense_base();
    const DefenseSuite suite(DefenseSpec::parse("collusion=0,outage=0"));
    const DefenseReport report =
        suite.analyze(data.sx, data.sy, data.existence);
    EXPECT_TRUE(report.flags.empty());
    EXPECT_TRUE(report.empty_quarantine());
    EXPECT_EQ(report.trips, 0u);
}

// ---- Collusion test ----------------------------------------------------

TEST(DefenseCollusion, FlagsTheColludingSubFleetAndNobodyElse) {
    CorruptedDataset data = dense_base();
    const AdversaryInjection injection = attack(data, "collude=6,seed=11");
    ASSERT_EQ(injection.colluders.size(), 6u);

    const DefenseSuite suite(DefenseSpec::parse("replay=0,outage=0"));
    const DefenseReport report =
        suite.analyze(data.sx, data.sy, data.existence);

    EXPECT_EQ(report.trips, 1u);
    for (const std::size_t colluder : injection.colluders) {
        EXPECT_TRUE(contains(report.quarantined, colluder))
            << "colluder " << colluder << " escaped";
    }
    for (const DefenseFlag& flag : report.flags) {
        EXPECT_EQ(flag.test, DefenseTest::kCollusion);
        EXPECT_TRUE(contains(injection.colluders, flag.participant))
            << "honest row " << flag.participant << " falsely flagged";
    }
}

TEST(DefenseCollusion, CleanFleetSurvivesTheLeaveGroupOutScan) {
    CorruptedDataset data = dense_base();
    const DefenseSuite suite(DefenseSpec{});
    const DefenseReport report =
        suite.analyze(data.sx, data.sy, data.existence);
    EXPECT_TRUE(report.empty_quarantine())
        << report.quarantined.size() << " honest rows quarantined";
}

TEST(DefenseCollusion, SuspectFractionSeparatesAttackedFromClean) {
    CorruptedDataset clean = dense_base();
    EXPECT_DOUBLE_EQ(collusion_suspect_fraction(clean.sx, clean.sy,
                                                clean.existence, 4.0, 0.0),
                     0.0);
    CorruptedDataset hostile = dense_base();
    attack(hostile, "collude=8,seed=11");
    const double fraction = collusion_suspect_fraction(
        hostile.sx, hostile.sy, hostile.existence, 4.0, 0.0);
    EXPECT_GE(fraction, 8.0 / 36.0 - 1e-12);
    EXPECT_THROW(collusion_suspect_fraction(clean.sx, clean.sy,
                                            clean.existence, 0.5, 0.0),
                 Error);
}

// ---- Outage classifier -------------------------------------------------

TEST(DefenseOutage, DarkBlockIsLabeledMissingNotFaulty) {
    CorruptedDataset data = defense_base();
    const AdversaryInjection injection =
        attack(data, "outage=6,outagespan=10,seed=5");
    ASSERT_EQ(injection.outage_rows, 6u);
    ASSERT_EQ(injection.outage_slots, 10u);

    const DefenseSuite suite(DefenseSpec::parse("collusion=0,replay=0"));
    const DefenseReport report =
        suite.analyze(data.sx, data.sy, data.existence);

    ASSERT_FALSE(report.outages.empty());
    EXPECT_EQ(report.trips, 1u);
    // One classified block must cover the injected rectangle.
    const auto block = std::find_if(
        report.outages.begin(), report.outages.end(),
        [&](const OutageBlock& b) {
            return b.first_row <= injection.outage_first_row &&
                   b.first_row + b.rows >=
                       injection.outage_first_row + injection.outage_rows &&
                   b.first_slot <= injection.outage_first_slot &&
                   b.first_slot + b.slots >= injection.outage_first_slot +
                                                 injection.outage_slots;
        });
    ASSERT_NE(block, report.outages.end());
    EXPECT_GE(report.missing_not_faulty_cells, 60u);  // the 6 x 10 block
    // An availability incident quarantines nobody.
    EXPECT_TRUE(report.empty_quarantine());
}

TEST(DefenseOutage, ScatteredMissingCellsAreNotAnOutage) {
    CorruptedDataset data = defense_base();
    const DefenseSuite suite(DefenseSpec::parse("collusion=0,replay=0"));
    const DefenseReport report =
        suite.analyze(data.sx, data.sy, data.existence);
    EXPECT_TRUE(report.outages.empty());
    EXPECT_EQ(report.missing_not_faulty_cells, 0u);
}

// ---- Quarantine cap ----------------------------------------------------

TEST(DefenseCap, MaxQuarantineBoundsTheFlagListReplayFirst) {
    CorruptedDataset data = defense_base();
    const AdversaryInjection injection =
        attack(data, "collude=8,replay=2,replayshift=5,seed=21");

    DefenseSpec spec;
    spec.max_quarantine = 0.125;  // cap = floor(0.125 * 24) = 3
    const DefenseSuite suite(spec);
    const DefenseReport report =
        suite.analyze(data.sx, data.sy, data.existence);

    EXPECT_LE(report.quarantined.size(), 3u);
    // Replay evidence outranks collusion evidence under the cap.
    for (const auto& [fraud, victim] : injection.replays) {
        EXPECT_TRUE(contains(report.quarantined, fraud));
        (void)victim;
    }
}

// ---- Re-test (the quarantine ladder's second opinion) ------------------

TEST(DefenseRetest, HonestRowIsReinstatedReplayIsConfirmed) {
    CorruptedDataset data = dense_base();

    const DefenseSuite suite(DefenseSpec{});
    DefenseReport report;
    // Quarantine an honest row by hand, and mark another as a replay
    // fraud: the re-test must clear the first and refuse the second.
    report.quarantined = {2, 5};
    DefenseFlag replay;
    replay.participant = 5;
    replay.test = DefenseTest::kReplay;
    report.flags.push_back(replay);

    // Honest reconstruction stand-in: the raw uploads themselves (clean
    // fleet, so they *are* drawn from the honest subspace).
    suite.retest(data.sx, data.sy, data.existence, data.sx, data.sy,
                 report);
    EXPECT_EQ(report.reinstated, (std::vector<std::size_t>{2}));
    EXPECT_EQ(report.confirmed, (std::vector<std::size_t>{5}));
}

TEST(DefenseRetest, ColluderStaysConfirmedAgainstTheHonestBasis) {
    CorruptedDataset data = dense_base();
    const AdversaryInjection injection = attack(data, "collude=6,seed=11");

    const DefenseSuite suite(DefenseSpec{});
    DefenseReport report =
        suite.analyze(data.sx, data.sy, data.existence);
    for (const std::size_t colluder : injection.colluders) {
        ASSERT_TRUE(contains(report.quarantined, colluder));
    }
    suite.retest(data.sx, data.sy, data.existence, data.sx, data.sy,
                 report);
    for (const std::size_t colluder : injection.colluders) {
        EXPECT_TRUE(contains(report.confirmed, colluder))
            << "colluder " << colluder << " talked itself back in";
    }
    // reinstated + confirmed is a partition of quarantined.
    EXPECT_EQ(report.reinstated.size() + report.confirmed.size(),
              report.quarantined.size());
}

// ---- Determinism -------------------------------------------------------

TEST(DefenseSuiteTest, AnalyzeAndRetestAreDeterministic) {
    CorruptedDataset a = defense_base();
    CorruptedDataset b = defense_base();
    attack(a, "collude=5,replay=2,outage=6,outagespan=10,seed=21");
    attack(b, "collude=5,replay=2,outage=6,outagespan=10,seed=21");

    const DefenseSuite suite(DefenseSpec{});
    DefenseReport ra = suite.analyze(a.sx, a.sy, a.existence);
    DefenseReport rb = suite.analyze(b.sx, b.sy, b.existence);
    EXPECT_EQ(ra.quarantined, rb.quarantined);
    EXPECT_EQ(ra.missing_not_faulty_cells, rb.missing_not_faulty_cells);
    EXPECT_EQ(ra.trips, rb.trips);
    ASSERT_EQ(ra.flags.size(), rb.flags.size());
    for (std::size_t k = 0; k < ra.flags.size(); ++k) {
        EXPECT_EQ(ra.flags[k].participant, rb.flags[k].participant);
        EXPECT_EQ(ra.flags[k].test, rb.flags[k].test);
        EXPECT_DOUBLE_EQ(ra.flags[k].score, rb.flags[k].score);
    }
    suite.retest(a.sx, a.sy, a.existence, a.sx, a.sy, ra);
    suite.retest(b.sx, b.sy, b.existence, b.sx, b.sy, rb);
    EXPECT_EQ(ra.reinstated, rb.reinstated);
    EXPECT_EQ(ra.confirmed, rb.confirmed);
}

TEST(DefenseSuiteTest, ShapeMismatchIsRejected) {
    const DefenseSuite suite(DefenseSpec{});
    const Matrix good(4, 10);
    const Matrix bad(4, 9);
    EXPECT_THROW(suite.analyze(good, bad, good), Error);
}

}  // namespace
}  // namespace mcs
