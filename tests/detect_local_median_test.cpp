// Tests for the Optimized Local Median Method (Algorithm 1, Eq. 12).
#include "detect/local_median.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "detect/detection.hpp"

namespace mcs {
namespace {

// A stationary 1 x t row with a single spike at `spike_slot`.
struct SpikeFixture {
    Matrix s;
    Matrix velocity;  // all zeros: vehicle parked
    Matrix existence;
    Matrix detection;

    SpikeFixture(std::size_t t, std::size_t spike_slot, double spike) {
        s = Matrix(1, t, 1000.0);
        s(0, spike_slot) = 1000.0 + spike;
        velocity = Matrix(1, t);
        existence = Matrix::constant(1, t, 1.0);
        detection = Matrix::constant(1, t, 1.0);
    }
};

TEST(WindowStart, ClampsAtBothEnds) {
    EXPECT_EQ(window_start(0, 5, 20), 0u);
    EXPECT_EQ(window_start(1, 5, 20), 0u);
    EXPECT_EQ(window_start(2, 5, 20), 0u);
    EXPECT_EQ(window_start(3, 5, 20), 1u);
    EXPECT_EQ(window_start(10, 5, 20), 8u);
    EXPECT_EQ(window_start(19, 5, 20), 15u);
    EXPECT_EQ(window_start(18, 5, 20), 15u);
}

TEST(DynamicTolerance, FloorForParkedVehicle) {
    const Matrix velocity(1, 20);
    const Matrix existence = Matrix::constant(1, 20, 1.0);
    LocalMedianConfig config;
    const double delta =
        dynamic_tolerance(velocity, existence, 0, 10, 30.0, config);
    EXPECT_DOUBLE_EQ(delta, config.min_tolerance_m);
}

TEST(DynamicTolerance, ScalesWithSpeed) {
    Matrix slow(1, 20, 2.0);   // 2 m/s
    Matrix fast(1, 20, 20.0);  // 20 m/s
    const Matrix existence = Matrix::constant(1, 20, 1.0);
    LocalMedianConfig config;
    const double d_slow =
        dynamic_tolerance(slow, existence, 0, 10, 30.0, config);
    const double d_fast =
        dynamic_tolerance(fast, existence, 0, 10, 30.0, config);
    EXPECT_GT(d_fast, d_slow);
    // Constant velocity v: max drift from slot j inside a w=5 window is
    // 2 slots of travel in either direction -> 2·v·τ·ξ.
    EXPECT_NEAR(d_fast, config.xi * 2.0 * 20.0 * 30.0, 1e-9);
}

TEST(DynamicTolerance, MissingSlotsReduceTolerance) {
    Matrix velocity(1, 20, 10.0);
    const Matrix all = Matrix::constant(1, 20, 1.0);
    Matrix holey = all;
    // Shrink the reachable drift on BOTH sides of the tested slot (the
    // tolerance takes the max of backward and forward spans).
    holey(0, 8) = 0.0;
    holey(0, 9) = 0.0;
    holey(0, 11) = 0.0;
    holey(0, 12) = 0.0;
    LocalMedianConfig config;
    const double d_full = dynamic_tolerance(velocity, all, 0, 10, 30.0,
                                            config);
    const double d_holey = dynamic_tolerance(velocity, holey, 0, 10, 30.0,
                                             config);
    EXPECT_LT(d_holey, d_full);
}

TEST(TsDetect, ClearsNormalStationaryData) {
    SpikeFixture f(20, 10, 0.0);  // no spike at all
    const Matrix d =
        ts_detect(f.s, Matrix(), f.velocity, f.detection, f.existence, 30.0,
                  LocalMedianConfig{}, /*first_execution=*/true);
    EXPECT_EQ(count_flagged(d), 0u);
}

TEST(TsDetect, FlagsLargeSpike) {
    SpikeFixture f(20, 10, 5000.0);
    const Matrix d =
        ts_detect(f.s, Matrix(), f.velocity, f.detection, f.existence, 30.0,
                  LocalMedianConfig{}, true);
    EXPECT_DOUBLE_EQ(d(0, 10), 1.0);
    // Neighbours remain normal (median robust to one spike).
    EXPECT_DOUBLE_EQ(d(0, 9), 0.0);
    EXPECT_DOUBLE_EQ(d(0, 11), 0.0);
}

TEST(TsDetect, ToleratesSpikeWithinDynamicTolerance) {
    // A fast vehicle's legitimate displacement must not be flagged: give
    // the row a linear motion consistent with its velocity.
    const std::size_t t = 20;
    Matrix s(1, t);
    Matrix velocity(1, t, 15.0);
    for (std::size_t j = 0; j < t; ++j) {
        s(0, j) = 15.0 * 30.0 * static_cast<double>(j);
    }
    const Matrix existence = Matrix::constant(1, t, 1.0);
    const Matrix detection = Matrix::constant(1, t, 1.0);
    const Matrix d = ts_detect(s, Matrix(), velocity, detection, existence,
                               30.0, LocalMedianConfig{}, true);
    EXPECT_EQ(count_flagged(d), 0u);
}

TEST(TsDetect, SkipsMissingCellsOnFirstPass) {
    SpikeFixture f(20, 10, 5000.0);
    f.existence(0, 5) = 0.0;  // missing cell keeps its initial flag
    const Matrix d =
        ts_detect(f.s, Matrix(), f.velocity, f.detection, f.existence, 30.0,
                  LocalMedianConfig{}, true);
    EXPECT_DOUBLE_EQ(d(0, 5), 1.0);   // untouched
    EXPECT_DOUBLE_EQ(d(0, 10), 1.0);  // spike still caught
}

TEST(TsDetect, SecondPassUsesReconstruction) {
    SpikeFixture f(20, 10, 5000.0);
    f.existence(0, 4) = 0.0;
    // Reconstruction fills the missing cell with the true value.
    Matrix reconstructed(1, 20, 1000.0);
    const Matrix d =
        ts_detect(f.s, reconstructed, f.velocity, f.detection, f.existence,
                  30.0, LocalMedianConfig{}, /*first_execution=*/false);
    // On the second pass every cell is tested; the filled cell is normal.
    EXPECT_DOUBLE_EQ(d(0, 4), 0.0);
    EXPECT_DOUBLE_EQ(d(0, 10), 1.0);
}

TEST(TsDetect, OnlyClearsNeverRaises) {
    // Cells starting at 0 stay 0 even if they look anomalous: TS_Detect
    // only moves flags in one direction (Check() is the raising path).
    SpikeFixture f(20, 10, 5000.0);
    f.detection.fill(0.0);
    const Matrix d =
        ts_detect(f.s, Matrix(), f.velocity, f.detection, f.existence, 30.0,
                  LocalMedianConfig{}, true);
    EXPECT_EQ(count_flagged(d), 0u);
}

TEST(TsDetect, ConfigValidation) {
    SpikeFixture f(20, 10, 0.0);
    LocalMedianConfig config;
    config.window = 4;  // even
    EXPECT_THROW(ts_detect(f.s, Matrix(), f.velocity, f.detection,
                           f.existence, 30.0, config, true),
                 Error);
    config = LocalMedianConfig{};
    config.window = 25;  // larger than t
    EXPECT_THROW(ts_detect(f.s, Matrix(), f.velocity, f.detection,
                           f.existence, 30.0, config, true),
                 Error);
    config = LocalMedianConfig{};
    config.xi = 0.0;
    EXPECT_THROW(ts_detect(f.s, Matrix(), f.velocity, f.detection,
                           f.existence, 30.0, config, true),
                 Error);
}

// Property: ξ monotonicity — a larger ξ never flags more cells.
class XiProperty : public ::testing::TestWithParam<double> {};

TEST_P(XiProperty, LargerXiFlagsNoMore) {
    SpikeFixture f(40, 20, 700.0);
    // Give the vehicle some motion so the tolerance is velocity-driven.
    for (std::size_t j = 0; j < 40; ++j) {
        f.s(0, j) += 5.0 * 30.0 * static_cast<double>(j);
        f.velocity(0, j) = 5.0;
    }
    LocalMedianConfig tight;
    tight.xi = GetParam();
    LocalMedianConfig loose = tight;
    loose.xi = GetParam() * 2.0;
    const Matrix d_tight =
        ts_detect(f.s, Matrix(), f.velocity, f.detection, f.existence, 30.0,
                  tight, true);
    const Matrix d_loose =
        ts_detect(f.s, Matrix(), f.velocity, f.detection, f.existence, 30.0,
                  loose, true);
    EXPECT_LE(count_flagged(d_loose), count_flagged(d_tight));
}

INSTANTIATE_TEST_SUITE_P(XiSweep, XiProperty,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace mcs
