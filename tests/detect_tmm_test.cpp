// Tests for the TMM baseline and the detection-matrix utilities.
#include "detect/detection.hpp"
#include "detect/tmm.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace mcs {
namespace {

TEST(Tmm, FlagsSpikeAboveFixedThreshold) {
    Matrix s(1, 15, 500.0);
    s(0, 7) = 500.0 + 5000.0;
    const Matrix existence = Matrix::constant(1, 15, 1.0);
    TmmConfig config;
    config.threshold_m = 1000.0;
    const Matrix d = tmm_detect(s, existence, config);
    EXPECT_DOUBLE_EQ(d(0, 7), 1.0);
    EXPECT_EQ(count_flagged(d), 1u);
}

TEST(Tmm, FixedThresholdMissesSlowDrift) {
    // Unlike the dynamic method, TMM with a large threshold ignores
    // deviations below it regardless of vehicle speed.
    Matrix s(1, 15, 500.0);
    s(0, 7) = 500.0 + 800.0;  // below the 1000 m threshold
    const Matrix existence = Matrix::constant(1, 15, 1.0);
    TmmConfig config;
    config.threshold_m = 1000.0;
    const Matrix d = tmm_detect(s, existence, config);
    EXPECT_EQ(count_flagged(d), 0u);
}

TEST(Tmm, SkipsMissingCells) {
    Matrix s(1, 15, 500.0);
    s(0, 7) = 99999.0;
    Matrix existence = Matrix::constant(1, 15, 1.0);
    existence(0, 7) = 0.0;  // the spike cell is missing: no reading
    const Matrix d = tmm_detect(s, existence, TmmConfig{});
    EXPECT_EQ(count_flagged(d), 0u);
}

TEST(Tmm, XyUnionFlagsEitherAxis) {
    Matrix sx(1, 15, 0.0);
    Matrix sy(1, 15, 0.0);
    sx(0, 3) = 5000.0;  // x-axis fault
    sy(0, 9) = 5000.0;  // y-axis fault
    const Matrix existence = Matrix::constant(1, 15, 1.0);
    const Matrix d = tmm_detect_xy(sx, sy, existence, TmmConfig{});
    EXPECT_DOUBLE_EQ(d(0, 3), 1.0);
    EXPECT_DOUBLE_EQ(d(0, 9), 1.0);
    EXPECT_EQ(count_flagged(d), 2u);
}

TEST(Tmm, ConfigValidation) {
    const Matrix s(1, 15, 0.0);
    const Matrix existence = Matrix::constant(1, 15, 1.0);
    TmmConfig config;
    config.window = 2;
    EXPECT_THROW(tmm_detect(s, existence, config), Error);
    config = TmmConfig{};
    config.threshold_m = 0.0;
    EXPECT_THROW(tmm_detect(s, existence, config), Error);
}

TEST(Detection, UnionSemantics) {
    const Matrix a{{1, 0, 0, 1}};
    const Matrix b{{0, 0, 1, 1}};
    const Matrix u = detection_union(a, b);
    EXPECT_DOUBLE_EQ(u(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(u(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(u(0, 2), 1.0);
    EXPECT_DOUBLE_EQ(u(0, 3), 1.0);
}

TEST(Detection, UnionRejectsNonBinary) {
    const Matrix a{{0.5, 0.0}};
    const Matrix b{{0.0, 0.0}};
    EXPECT_THROW(detection_union(a, b), Error);
}

TEST(Detection, GbimDefinition7) {
    const Matrix existence{{1, 1, 0, 0}};
    const Matrix detection{{0, 1, 0, 1}};
    const Matrix gbim = make_gbim(existence, detection);
    EXPECT_DOUBLE_EQ(gbim(0, 0), 1.0);  // observed, not detected
    EXPECT_DOUBLE_EQ(gbim(0, 1), 0.0);  // observed but detected
    EXPECT_DOUBLE_EQ(gbim(0, 2), 0.0);  // missing
    EXPECT_DOUBLE_EQ(gbim(0, 3), 0.0);  // missing and detected
}

TEST(Detection, CountDifferences) {
    const Matrix a{{1, 0, 1}};
    const Matrix b{{1, 1, 0}};
    EXPECT_EQ(count_differences(a, b), 2u);
    EXPECT_EQ(count_differences(a, a), 0u);
    EXPECT_THROW(count_differences(a, Matrix(2, 3)), Error);
}

TEST(Detection, CountFlagged) {
    const Matrix a{{1, 0, 1, 1}};
    EXPECT_EQ(count_flagged(a), 3u);
    EXPECT_EQ(count_flagged(Matrix(2, 2)), 0u);
}

}  // namespace
}  // namespace mcs
