// Tests for the evaluation harness: method registry, scenario runner,
// and the table renderer.
#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/format.hpp"
#include "detect/detection.hpp"
#include "eval/heatmap.hpp"
#include "eval/quality.hpp"
#include "eval/table.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

TEST(Methods, NamesAreFigureLabels) {
    EXPECT_EQ(to_string(Method::kTmm), "TMM");
    EXPECT_EQ(to_string(Method::kCsOnly), "CS");
    EXPECT_EQ(to_string(Method::kItscsFull), "I(TS,CS)");
    EXPECT_EQ(to_string(Method::kItscsWithoutV), "I(TS,CS) w/o V");
    EXPECT_EQ(to_string(Method::kItscsWithoutVT), "I(TS,CS) w/o VT");
}

TEST(Methods, ReconstructionCapability) {
    EXPECT_FALSE(reconstructs(Method::kTmm));
    EXPECT_TRUE(reconstructs(Method::kCsOnly));
    EXPECT_TRUE(reconstructs(Method::kItscsFull));
}

TEST(Methods, AdapterCopiesShapes) {
    const TraceDataset truth = make_small_dataset(1, 6, 20);
    CorruptionConfig config;
    config.missing_ratio = 0.1;
    const CorruptedDataset data = corrupt(truth, config);
    const ItscsInput input = to_itscs_input(data);
    EXPECT_EQ(input.sx.rows(), 6u);
    EXPECT_EQ(input.existence.cols(), 20u);
    EXPECT_DOUBLE_EQ(input.tau_s, truth.tau_s);
}

TEST(Methods, TmmRunsWithoutReconstruction) {
    const TraceDataset truth = make_small_dataset(2, 8, 30);
    CorruptionConfig config;
    config.fault_ratio = 0.2;
    const CorruptedDataset data = corrupt(truth, config);
    const MethodResult result =
        run_method(Method::kTmm, data, MethodSettings{});
    EXPECT_EQ(result.detection.rows(), 8u);
    EXPECT_TRUE(result.reconstructed_x.empty());
    EXPECT_GT(count_flagged(result.detection), 0u);
}

TEST(Methods, VariantsUseDistinctTemporalModes) {
    // Smoke test: all three variants run and produce reconstructions.
    const TraceDataset truth = make_small_dataset(3, 10, 40);
    CorruptionConfig config;
    config.missing_ratio = 0.1;
    config.fault_ratio = 0.1;
    const CorruptedDataset data = corrupt(truth, config);
    MethodSettings settings;
    settings.itscs_base.max_iterations = 3;
    for (const Method m : {Method::kItscsWithoutVT, Method::kItscsWithoutV,
                           Method::kItscsFull}) {
        const MethodResult result = run_method(m, data, settings);
        EXPECT_EQ(result.reconstructed_x.rows(), 10u) << to_string(m);
        EXPECT_GE(result.iterations, 1u);
    }
}

TEST(Experiment, ScenarioProducesSensibleScores) {
    const TraceDataset truth = make_small_dataset(4, 16, 60);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.2;
    corruption.fault_ratio = 0.2;
    corruption.seed = 9;
    const ExperimentPoint point = run_scenario(
        truth, corruption, Method::kItscsFull, MethodSettings{});
    EXPECT_DOUBLE_EQ(point.alpha, 0.2);
    EXPECT_DOUBLE_EQ(point.beta, 0.2);
    EXPECT_EQ(point.method, Method::kItscsFull);
    EXPECT_GT(point.precision, 0.5);
    EXPECT_GT(point.recall, 0.9);
    EXPECT_GT(point.mae_m, 0.0);
    EXPECT_GE(point.rmse_m, point.mae_m);  // RMSE dominates MAE
    EXPECT_GT(point.elapsed_s, 0.0);
}

TEST(Experiment, TmmScenarioHasNoMae) {
    const TraceDataset truth = make_small_dataset(5, 10, 40);
    CorruptionConfig corruption;
    corruption.fault_ratio = 0.2;
    const ExperimentPoint point =
        run_scenario(truth, corruption, Method::kTmm, MethodSettings{});
    EXPECT_DOUBLE_EQ(point.mae_m, 0.0);
}

TEST(Experiment, AveragingUsesDistinctSeeds) {
    const TraceDataset truth = make_small_dataset(6, 10, 40);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.2;
    corruption.fault_ratio = 0.1;
    corruption.seed = 3;
    MethodSettings settings;
    settings.itscs_base.max_iterations = 3;
    const ExperimentPoint avg = run_scenario_averaged(
        truth, corruption, Method::kItscsFull, settings, 3);
    // The mean of three runs sits inside the hull of individual runs; a
    // cheap sanity proxy: it is a valid probability.
    EXPECT_GE(avg.precision, 0.0);
    EXPECT_LE(avg.precision, 1.0);
    EXPECT_GE(avg.recall, 0.0);
    EXPECT_LE(avg.recall, 1.0);
    EXPECT_THROW(run_scenario_averaged(truth, corruption,
                                       Method::kItscsFull, settings, 0),
                 Error);
}

TEST(Table, RendersAlignedColumns) {
    Table table({"method", "precision"});
    table.add_row({"TMM", "91.0%"});
    table.add_row({"I(TS,CS)", "98.5%"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("method"), std::string::npos);
    EXPECT_NE(text.find("I(TS,CS)"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsMalformedRows) {
    Table table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), Error);
    EXPECT_THROW(Table({}), Error);
}

TEST(Heatmap, RendersExpectedShape) {
    Matrix m(10, 40);
    for (std::size_t j = 0; j < 40; ++j) {
        m(3, j) = static_cast<double>(j);  // one hot row
    }
    HeatmapOptions options;
    options.max_rows = 5;
    options.max_cols = 20;
    std::ostringstream out;
    render_heatmap(out, m, options);
    const auto lines = split(out.str(), '\n');
    ASSERT_EQ(lines.size(), 6u);  // 5 rows + trailing empty
    EXPECT_EQ(lines[0].size(), 20u);
    // The hot row renders brighter glyphs than an all-zero row.
    EXPECT_NE(lines[1], lines[0]);
}

TEST(Heatmap, ConstantMatrixRendersLowestGlyph) {
    const Matrix m(4, 8, 3.0);
    std::ostringstream out;
    render_heatmap(out, m);
    for (const char c : out.str()) {
        if (c != '\n') {
            EXPECT_EQ(c, ' ');
        }
    }
}

TEST(Heatmap, IndicatorValidatesBinary) {
    std::ostringstream out;
    EXPECT_THROW(render_indicator_heatmap(out, Matrix(2, 2, 0.5)), Error);
    EXPECT_NO_THROW(render_indicator_heatmap(out, Matrix(2, 2, 1.0)));
    EXPECT_THROW(render_heatmap(out, Matrix()), Error);
}

// ---- Ground-truth-free quality score -----------------------------------

TEST(Quality, PerfectRunScoresOne) {
    // Reconstruction equals the uploads, all cells observed, nothing
    // flagged, stationary fleet: every component is exactly 1.
    const Matrix pos(3, 5, 100.0);
    const Matrix ones(3, 5, 1.0);
    const Matrix zeros(3, 5, 0.0);
    const QualityScore score =
        evaluate_quality(pos, pos, ones, zeros, pos, pos, 30.0);
    EXPECT_DOUBLE_EQ(score.residual_consistency, 1.0);
    EXPECT_DOUBLE_EQ(score.velocity_plausibility, 1.0);
    EXPECT_DOUBLE_EQ(score.detection_load, 1.0);
    EXPECT_DOUBLE_EQ(score.composite, 1.0);
    EXPECT_EQ(score.observed_cells, 15u);
    EXPECT_EQ(score.retained_cells, 15u);
    EXPECT_EQ(score.adjacent_pairs, 12u);
}

TEST(Quality, VacuousEvidenceScoresOne) {
    // Nothing observed at all: no evidence of a problem, score 1 by the
    // same convention ConfusionCounts uses.
    const Matrix m(2, 4, 0.0);
    const QualityScore score =
        evaluate_quality(m, m, m, m, m, m, 30.0);
    EXPECT_DOUBLE_EQ(score.composite, 1.0);
    EXPECT_EQ(score.observed_cells, 0u);
    EXPECT_EQ(score.adjacent_pairs, 0u);
}

TEST(Quality, ResidualsAgainstReconstructionLowerConsistency) {
    const Matrix pos(2, 4, 100.0);
    const Matrix ones(2, 4, 1.0);
    const Matrix zeros(2, 4, 0.0);
    Matrix rx = pos;
    for (std::size_t j = 0; j < 4; ++j) {
        rx(0, j) = 150.0;  // 50 m residual on row 0 = the decay scale
    }
    const QualityScore score =
        evaluate_quality(pos, pos, ones, zeros, rx, pos, 30.0);
    EXPECT_LT(score.residual_consistency, 1.0);
    EXPECT_DOUBLE_EQ(score.velocity_plausibility, 1.0);
    EXPECT_LT(score.composite, 1.0);
}

TEST(Quality, TeleportingPairLowersPlausibility) {
    Matrix sx(1, 3, 0.0);
    sx(0, 1) = 10000.0;  // 10 km in one 30 s slot: not drivable
    sx(0, 2) = 10000.0;
    const Matrix sy(1, 3, 0.0);
    const Matrix ones(1, 3, 1.0);
    const Matrix zeros(1, 3, 0.0);
    const QualityScore score =
        evaluate_quality(sx, sy, ones, zeros, sx, sy, 30.0);
    EXPECT_EQ(score.adjacent_pairs, 2u);
    EXPECT_DOUBLE_EQ(score.velocity_plausibility, 0.5);
}

TEST(Quality, FlagsReduceDetectionLoadAndSkipResiduals) {
    const Matrix pos(2, 4, 100.0);
    const Matrix ones(2, 4, 1.0);
    Matrix detection(2, 4, 0.0);
    for (std::size_t j = 0; j < 4; ++j) {
        detection(1, j) = 1.0;  // half the fleet flagged
    }
    Matrix rx = pos;
    for (std::size_t j = 0; j < 4; ++j) {
        rx(1, j) = 9999.0;  // huge residuals, but on flagged cells only
    }
    const QualityScore score =
        evaluate_quality(pos, pos, ones, detection, rx, pos, 30.0);
    EXPECT_DOUBLE_EQ(score.detection_load, 0.5);
    // Flagged cells are excluded from the residual pool: the framework
    // already disowned those readings.
    EXPECT_DOUBLE_EQ(score.residual_consistency, 1.0);
    EXPECT_EQ(score.retained_cells, 4u);
}

TEST(Quality, ValidatesShapesAndScales) {
    const Matrix a(2, 3, 0.0);
    const Matrix b(3, 2, 0.0);
    EXPECT_THROW(evaluate_quality(a, a, a, a, a, b, 30.0), Error);
    EXPECT_THROW(evaluate_quality(a, a, a, a, a, a, 0.0), Error);
    QualityConfig config;
    config.residual_scale_m = 0.0;
    EXPECT_THROW(evaluate_quality(a, a, a, a, a, a, 30.0, config), Error);
}

}  // namespace
}  // namespace mcs
