// Failure-injection and degenerate-input tests: the framework must stay
// well-behaved (no crashes, no NaNs, sane outputs) under pathological
// data — whole participants offline, bursts, parked fleets, adversarial
// fault placement.
#include <gtest/gtest.h>

#include <cmath>

#include "core/itscs.hpp"
#include "corruption/existence.hpp"
#include "corruption/scenario.hpp"
#include "detect/detection.hpp"
#include "eval/methods.hpp"
#include "linalg/temporal.hpp"
#include "metrics/confusion.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

bool all_finite(const Matrix& m) {
    for (const double v : m.data()) {
        if (!std::isfinite(v)) {
            return false;
        }
    }
    return true;
}

ItscsInput input_from(const CorruptedDataset& data) {
    return to_itscs_input(data);
}

TEST(FailureInjection, WholeParticipantOffline) {
    const TraceDataset truth = make_small_dataset(1, 16, 60);
    CorruptionConfig config;
    config.missing_ratio = 0.1;
    CorruptedDataset data = corrupt(truth, config);
    // Participant 3 never uploads anything.
    for (std::size_t j = 0; j < truth.slots(); ++j) {
        data.existence(3, j) = 0.0;
        data.sx(3, j) = 0.0;
        data.sy(3, j) = 0.0;
    }
    const ItscsResult result = run_itscs(input_from(data), ItscsConfig{});
    EXPECT_TRUE(all_finite(result.reconstructed_x));
    EXPECT_TRUE(all_finite(result.reconstructed_y));
}

TEST(FailureInjection, WholeSlotMissing) {
    const TraceDataset truth = make_small_dataset(2, 16, 60);
    CorruptionConfig config;
    CorruptedDataset data = corrupt(truth, config);
    // A server outage: slot 30 lost for everyone.
    for (std::size_t i = 0; i < truth.participants(); ++i) {
        data.existence(i, 30) = 0.0;
        data.sx(i, 30) = 0.0;
        data.sy(i, 30) = 0.0;
    }
    const ItscsResult result = run_itscs(input_from(data), ItscsConfig{});
    EXPECT_TRUE(all_finite(result.reconstructed_x));
    // The lost column is recoverable from temporal structure: the
    // reconstruction at slot 30 must sit between the neighbours' scale.
    for (std::size_t i = 0; i < truth.participants(); ++i) {
        EXPECT_NEAR(result.reconstructed_x(i, 30), truth.x(i, 30), 2000.0);
    }
}

TEST(FailureInjection, AllReadingsOfOneParticipantFaulty) {
    // An adversarial participant uploads garbage everywhere. The row's
    // "time series" is consistent garbage, so time-series detection alone
    // cannot condemn it — but the reconstruction stays finite, and honest
    // participants are unaffected.
    const TraceDataset truth = make_small_dataset(3, 16, 60);
    CorruptionConfig config;
    CorruptedDataset data = corrupt(truth, config);
    Rng rng(4);
    for (std::size_t j = 0; j < truth.slots(); ++j) {
        data.sx(5, j) = truth.x(5, j) + rng.uniform(20000.0, 40000.0);
        data.sy(5, j) = truth.y(5, j) + rng.uniform(20000.0, 40000.0);
        data.fault(5, j) = 1.0;
    }
    const ItscsResult result = run_itscs(input_from(data), ItscsConfig{});
    EXPECT_TRUE(all_finite(result.reconstructed_x));
    // Honest rows keep a high detection quality.
    ConfusionCounts honest;
    for (std::size_t i = 0; i < truth.participants(); ++i) {
        if (i == 5) {
            continue;
        }
        for (std::size_t j = 0; j < truth.slots(); ++j) {
            if (data.existence(i, j) == 0.0) {
                continue;
            }
            const bool flagged = result.detection(i, j) != 0.0;
            const bool faulty = data.fault(i, j) != 0.0;
            if (flagged && !faulty) {
                ++honest.false_positive;
            } else if (!flagged && !faulty) {
                ++honest.true_negative;
            }
        }
    }
    EXPECT_LT(honest.false_positive_rate(), 0.10);
}

TEST(FailureInjection, BurstOutagesStillConverge) {
    const TraceDataset truth = make_small_dataset(4, 20, 80);
    Rng rng(5);
    const Matrix existence =
        make_burst_existence_mask(20, 80, 0.3, 10.0, rng);
    CorruptionConfig config;
    CorruptedDataset data = corrupt(truth, config);  // no uniform missing
    // Overlay the burst mask.
    for (std::size_t i = 0; i < 20; ++i) {
        for (std::size_t j = 0; j < 80; ++j) {
            if (existence(i, j) == 0.0) {
                data.existence(i, j) = 0.0;
                data.sx(i, j) = 0.0;
                data.sy(i, j) = 0.0;
            }
        }
    }
    const ItscsResult result = run_itscs(input_from(data), ItscsConfig{});
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(all_finite(result.reconstructed_x));
}

TEST(FailureInjection, ParkedFleetWithNoise) {
    // Everyone parked: velocities zero, positions constant + noise. The
    // tolerance floor must keep false positives near zero.
    const std::size_t n = 10;
    const std::size_t t = 50;
    Rng rng(6);
    Matrix sx(n, t);
    Matrix sy(n, t);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 10000.0);
        const double y0 = rng.uniform(0.0, 10000.0);
        for (std::size_t j = 0; j < t; ++j) {
            sx(i, j) = x0 + rng.normal(0.0, 10.0);
            sy(i, j) = y0 + rng.normal(0.0, 10.0);
        }
    }
    ItscsInput input{sx, sy, Matrix(n, t), Matrix(n, t),
                     Matrix::constant(n, t, 1.0), 30.0};
    const ItscsResult result = run_itscs(input, ItscsConfig{});
    EXPECT_LT(count_flagged(result.detection), n * t / 50);  // < 2%
}

TEST(FailureInjection, TwoCollocatedFaultsInOneWindow) {
    // Two faults close to each other inside one detector window could
    // vouch for each other at the median level; CHECK must still catch
    // them against the reconstruction.
    const TraceDataset truth = make_small_dataset(7, 16, 60);
    CorruptionConfig config;
    CorruptedDataset data = corrupt(truth, config);
    // Place two faults next to each other, biased to the same point.
    data.sx(2, 20) = truth.x(2, 20) + 8000.0;
    data.sy(2, 20) = truth.y(2, 20) + 8000.0;
    data.sx(2, 21) = truth.x(2, 21) + 8000.0;
    data.sy(2, 21) = truth.y(2, 21) + 8000.0;
    data.fault(2, 20) = 1.0;
    data.fault(2, 21) = 1.0;
    const ItscsResult result = run_itscs(input_from(data), ItscsConfig{});
    EXPECT_DOUBLE_EQ(result.detection(2, 20), 1.0);
    EXPECT_DOUBLE_EQ(result.detection(2, 21), 1.0);
}

TEST(FailureInjection, ExtremeCorruptionStaysFinite) {
    // α + β = 0.9: only 10% of the data is trustworthy. Quality claims
    // stop here, but the library must not produce NaNs or crash.
    const TraceDataset truth = make_small_dataset(8, 16, 60);
    CorruptionConfig config;
    config.missing_ratio = 0.5;
    config.fault_ratio = 0.4;
    const CorruptedDataset data = corrupt(truth, config);
    const ItscsResult result = run_itscs(input_from(data), ItscsConfig{});
    EXPECT_TRUE(all_finite(result.reconstructed_x));
    EXPECT_TRUE(all_finite(result.reconstructed_y));
    const ConfusionCounts counts =
        evaluate_detection(result.detection, data.fault, data.existence);
    EXPECT_GE(counts.recall(), 0.8);  // faults are still km-scale outliers
}

TEST(FailureInjection, SingleParticipantDataset) {
    // n = 1: no cross-participant structure at all; the pipeline must
    // degrade gracefully to pure temporal reasoning.
    const TraceDataset truth = make_small_dataset(9, 1, 60);
    CorruptionConfig config;
    config.missing_ratio = 0.1;
    config.fault_ratio = 0.1;
    const CorruptedDataset data = corrupt(truth, config);
    ItscsConfig fw;
    fw.cs.rank = 1;
    const ItscsResult result = run_itscs(input_from(data), fw);
    EXPECT_TRUE(all_finite(result.reconstructed_x));
}

}  // namespace
}  // namespace mcs
