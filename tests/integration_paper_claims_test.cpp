// Paper-level integration tests: the qualitative claims of §IV, asserted
// on a mid-sized synthetic fleet (larger than the unit-test fixtures,
// smaller than the paper-scale benches, so the suite stays fast).
//
//  * Fig. 5 — I(TS,CS) detection beats TMM and stays high as α, β grow.
//  * Fig. 6 — CS-only reconstruction collapses under faults; I(TS,CS)
//             stays sub-kilometre; full < without-V < without-VT.
//  * Fig. 7 — faulty velocity barely hurts; dropping velocity hurts more.
//  * Fig. 8 — convergence in a handful of iterations, with the bulk of
//             the improvement between iterations 1 and 2.
#include <gtest/gtest.h>

#include "core/itscs.hpp"
#include "corruption/scenario.hpp"
#include "eval/experiment.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

// Shared mid-sized fleet (generated once; gtest environments would be
// overkill for a single object).
const TraceDataset& fleet() {
    static const TraceDataset dataset = [] {
        SimulatorConfig config;
        config.participants = 60;
        config.slots = 160;
        config.seed = 2024;
        config.network.width_m = 40000.0;
        config.network.height_m = 40000.0;
        return simulate_fleet(config);
    }();
    return dataset;
}

CorruptionConfig scenario(double alpha, double beta, std::uint64_t seed) {
    CorruptionConfig config;
    config.missing_ratio = alpha;
    config.fault_ratio = beta;
    config.seed = seed;
    return config;
}

TEST(PaperClaims, Fig5_ItscsBeatsTmmUnderHeavyCorruption) {
    const auto corruption = scenario(0.4, 0.4, 1);
    const ExperimentPoint tmm = run_scenario(fleet(), corruption,
                                             Method::kTmm, MethodSettings{});
    const ExperimentPoint itscs = run_scenario(
        fleet(), corruption, Method::kItscsFull, MethodSettings{});
    EXPECT_GT(itscs.precision, tmm.precision);
    EXPECT_GT(itscs.recall, tmm.recall);
    EXPECT_GE(itscs.precision, 0.90);
    EXPECT_GE(itscs.recall, 0.95);
}

TEST(PaperClaims, Fig5_DetectionStableAcrossAlpha) {
    // Precision/recall of I(TS,CS) barely move as the missing ratio grows
    // (the paper's "very stable" observation).
    const ExperimentPoint low = run_scenario(
        fleet(), scenario(0.0, 0.2, 2), Method::kItscsFull,
        MethodSettings{});
    const ExperimentPoint high = run_scenario(
        fleet(), scenario(0.4, 0.2, 2), Method::kItscsFull,
        MethodSettings{});
    EXPECT_GE(high.recall, low.recall - 0.03);
    EXPECT_GE(high.precision, low.precision - 0.08);
}

TEST(PaperClaims, Fig6_FaultsDestroyPlainCsButNotItscs) {
    const auto clean = scenario(0.2, 0.0, 3);
    const auto faulty = scenario(0.2, 0.3, 3);
    const ExperimentPoint cs_clean = run_scenario(
        fleet(), clean, Method::kCsOnly, MethodSettings{});
    const ExperimentPoint cs_faulty = run_scenario(
        fleet(), faulty, Method::kCsOnly, MethodSettings{});
    const ExperimentPoint itscs_faulty = run_scenario(
        fleet(), faulty, Method::kItscsFull, MethodSettings{});
    // Faults blow plain CS up by a large factor...
    EXPECT_GT(cs_faulty.mae_m, 3.0 * cs_clean.mae_m);
    // ...while the framework absorbs them.
    EXPECT_LT(itscs_faulty.mae_m, 0.5 * cs_faulty.mae_m);
}

TEST(PaperClaims, Fig6_VariantOrderingOnReconstruction) {
    const auto corruption = scenario(0.2, 0.2, 4);
    const ExperimentPoint full = run_scenario(
        fleet(), corruption, Method::kItscsFull, MethodSettings{});
    const ExperimentPoint without_v = run_scenario(
        fleet(), corruption, Method::kItscsWithoutV, MethodSettings{});
    const ExperimentPoint without_vt = run_scenario(
        fleet(), corruption, Method::kItscsWithoutVT, MethodSettings{});
    // Full <= without-V <= without-VT (small tolerance for tie noise).
    EXPECT_LE(full.mae_m, without_v.mae_m * 1.05);
    EXPECT_LT(without_v.mae_m, without_vt.mae_m);
    // The paper: full is roughly half of without-VT.
    EXPECT_LT(full.mae_m, 0.75 * without_vt.mae_m);
}

TEST(PaperClaims, Fig7_FaultyVelocityBarelyHurts) {
    auto corruption = scenario(0.2, 0.2, 5);
    const ExperimentPoint clean_velocity = run_scenario(
        fleet(), corruption, Method::kItscsFull, MethodSettings{});
    corruption.velocity_fault_ratio = 0.2;
    const ExperimentPoint faulty_velocity = run_scenario(
        fleet(), corruption, Method::kItscsFull, MethodSettings{});
    corruption.velocity_fault_ratio = 0.0;
    const ExperimentPoint no_velocity = run_scenario(
        fleet(), corruption, Method::kItscsWithoutV, MethodSettings{});
    // 20% faulty velocity costs far less than dropping velocity entirely.
    const double penalty_faulty =
        faulty_velocity.mae_m - clean_velocity.mae_m;
    const double penalty_dropped = no_velocity.mae_m - clean_velocity.mae_m;
    EXPECT_LT(faulty_velocity.mae_m, no_velocity.mae_m);
    EXPECT_LT(penalty_faulty, penalty_dropped);
}

TEST(PaperClaims, Fig8_ConvergesFastWithFrontLoadedImprovement) {
    const auto corruption = scenario(0.3, 0.3, 6);
    const CorruptedDataset data = corrupt(fleet(), corruption);
    const ItscsResult result =
        run_itscs(to_itscs_input(data), ItscsConfig{});
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, 8u);
    ASSERT_GE(result.history.size(), 2u);
    // The bulk of the detection-set movement happens by iteration 2.
    const std::size_t first_changes = result.history[0].detection_changes +
                                      result.history[1].detection_changes;
    std::size_t later_changes = 0;
    for (std::size_t k = 2; k < result.history.size(); ++k) {
        later_changes += result.history[k].detection_changes;
    }
    EXPECT_GT(first_changes, 5 * std::max<std::size_t>(later_changes, 1));
}

// Sweep the paper's corruption grid and require the headline bounds of
// §IV-B on every point (precision/recall thresholds relaxed slightly for
// the synthetic substrate at the extreme corner; see EXPERIMENTS.md).
class DetectionGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DetectionGrid, PrecisionRecallFloor) {
    const auto [alpha, beta] = GetParam();
    const ExperimentPoint point = run_scenario(
        fleet(), scenario(alpha, beta, 7), Method::kItscsFull,
        MethodSettings{});
    EXPECT_GE(point.precision, 0.88)
        << "alpha=" << alpha << " beta=" << beta;
    EXPECT_GE(point.recall, 0.95) << "alpha=" << alpha << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBeta, DetectionGrid,
    ::testing::Values(std::make_tuple(0.0, 0.1), std::make_tuple(0.0, 0.4),
                      std::make_tuple(0.2, 0.2), std::make_tuple(0.4, 0.1),
                      std::make_tuple(0.4, 0.4)));

}  // namespace
}  // namespace mcs
