// Tests for the output-parameter kernels and the Workspace arena.
//
// The `_into` kernels promise bit-for-bit identity with the value-returning
// ops of linalg/ops.hpp (same loop order, same rounding), so every
// equivalence assertion here uses exact Matrix equality, not a tolerance.
// The Workspace tests pin down the recycling contract the ASD solver's
// zero-allocation steady state depends on.
#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/context.hpp"
#include "common/rng.hpp"
#include "linalg/kernel_tier.hpp"
#include "linalg/svd.hpp"
#include "cs/asd.hpp"
#include "cs/init.hpp"
#include "cs/objective.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/ops.hpp"
#include "linalg/temporal.hpp"

namespace mcs {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& x : m.data()) {
        x = rng.uniform(-2.0, 2.0);
    }
    return m;
}

// Destination pre-filled with garbage: passes only if fully overwritten.
Matrix garbage(std::size_t rows, std::size_t cols) {
    return Matrix::constant(rows, cols, -777.25);
}

TEST(Kernels, ElementwiseMatchValueOpsExactly) {
    Rng rng(7);
    const Matrix a = random_matrix(5, 4, rng);
    const Matrix b = random_matrix(5, 4, rng);

    Matrix dst = garbage(5, 4);
    copy_into(dst, a);
    EXPECT_TRUE(dst == a);

    dst = garbage(5, 4);
    subtract_into(dst, a, b);
    EXPECT_TRUE(dst == subtract(a, b));

    dst = garbage(5, 4);
    hadamard_into(dst, a, b);
    EXPECT_TRUE(dst == hadamard(a, b));
}

TEST(Kernels, AxpyMatchesScaleAddExactly) {
    Rng rng(8);
    const Matrix y0 = random_matrix(6, 3, rng);
    const Matrix x = random_matrix(6, 3, rng);
    const double alpha = -0.3717;

    Matrix y = y0;
    axpy(y, alpha, x);
    EXPECT_TRUE(y == add(y0, scale(x, alpha)));
}

TEST(Kernels, ProductsMatchValueOpsExactly) {
    Rng rng(9);
    const Matrix a = random_matrix(5, 3, rng);
    const Matrix b = random_matrix(3, 4, rng);
    const Matrix c = random_matrix(6, 3, rng);   // for a·cᵀ (shared cols)
    const Matrix d = random_matrix(5, 4, rng);   // for aᵀ·d (shared rows)

    Matrix ab = garbage(5, 4);
    multiply_into(ab, a, b);
    EXPECT_TRUE(ab == multiply(a, b));

    Matrix act = garbage(5, 6);
    multiply_transposed_into(act, a, c);
    EXPECT_TRUE(act == multiply_transposed(a, c));

    Matrix atd = garbage(3, 4);
    transpose_multiply_into(atd, a, d);
    EXPECT_TRUE(atd == transpose_multiply(a, d));

    Matrix at = garbage(3, 5);
    transpose_into(at, a);
    EXPECT_TRUE(at == transpose(a));
}

TEST(Kernels, MaskedResidualMatchesValueOpExactly) {
    Rng rng(10);
    const Matrix l = random_matrix(6, 2, rng);
    const Matrix r = random_matrix(5, 2, rng);
    const Matrix s = random_matrix(6, 5, rng);
    Matrix mask(6, 5);
    for (auto& x : mask.data()) {
        x = rng.uniform(0.0, 1.0) < 0.5 ? 0.0 : 1.0;
    }

    Matrix dst = garbage(6, 5);
    masked_residual_into(dst, l, r, mask, s);
    EXPECT_TRUE(dst == masked_residual(l, r, mask, s));
}

TEST(Kernels, GramAndTemporalMatchValueOpsExactly) {
    Rng rng(11);
    const Matrix a = random_matrix(7, 3, rng);

    Matrix gram = garbage(3, 3);
    gram_with_ridge_into(gram, a, 0.25);
    EXPECT_TRUE(gram == gram_with_ridge(a, 0.25));

    const Matrix x = random_matrix(4, 6, rng);
    Matrix diff = garbage(4, 6);
    temporal_diff_into(diff, x);
    EXPECT_TRUE(diff == temporal_diff(x));

    Matrix adj = garbage(4, 6);
    temporal_diff_adjoint_into(adj, x);
    EXPECT_TRUE(adj == temporal_diff_adjoint(x));
}

TEST(Kernels, GemmFlopsAreCounted) {
    PipelineCounters counters;
    const Matrix a(5, 3, 1.0);
    const Matrix b(3, 4, 1.0);
    Matrix dst(5, 4);
    multiply_into(dst, a, b, &counters);
    EXPECT_EQ(counters.gemm_flops, 2u * 5u * 4u * 3u);
}

TEST(Kernels, ShapeMismatchThrows) {
    Matrix dst(2, 2);
    const Matrix a(2, 3);
    const Matrix b(3, 2);
    EXPECT_THROW(copy_into(dst, a), Error);
    EXPECT_THROW(multiply_into(dst, a, a), Error);  // inner dims disagree
    Matrix wrong(3, 3);
    EXPECT_THROW(multiply_into(wrong, a, b), Error);  // dst shape wrong
}

TEST(Kernels, CholeskyInPlaceMatchesOutOfPlace) {
    Rng rng(12);
    const Matrix a = random_matrix(6, 4, rng);
    const Matrix spd = gram_with_ridge(a, 1.0);

    Matrix factor = spd;
    cholesky_in_place(factor);
    const Matrix reference = cholesky(spd);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            EXPECT_DOUBLE_EQ(factor(i, j), reference(i, j));
        }
    }

    const Matrix rhs = random_matrix(4, 3, rng);
    Matrix solved = rhs;
    cholesky_solve_in_place(reference, solved);
    EXPECT_TRUE(solved == solve_spd(spd, rhs));
}

TEST(Workspace, RecyclesExactShapes) {
    PipelineCounters counters;
    Workspace ws(&counters);

    Matrix first = ws.acquire(3, 4);
    ws.release(std::move(first));
    Matrix second = ws.acquire(3, 4);  // must reuse the pooled buffer
    EXPECT_EQ(ws.created(), 1u);
    EXPECT_EQ(counters.workspace_allocations, 1u);
    EXPECT_EQ(counters.workspace_checkouts, 2u);

    Matrix other = ws.acquire(4, 3);  // different shape: fresh allocation
    EXPECT_EQ(ws.created(), 2u);
    ws.release(std::move(second));
    ws.release(std::move(other));
    EXPECT_EQ(ws.pooled(), 2u);
}

TEST(Workspace, ScratchLeaseReturnsOnScopeExit) {
    Workspace ws;
    {
        Scratch s(ws, 2, 5);
        s->fill(1.0);
        EXPECT_EQ((*s).rows(), 2u);
        EXPECT_EQ(ws.pooled(), 0u);
    }
    EXPECT_EQ(ws.pooled(), 1u);
    EXPECT_EQ(ws.created(), 1u);
}

// ---- ASD steady-state regression ---------------------------------------

struct AsdSetup {
    Matrix s;
    Matrix mask;
    Matrix velocity;
    FactorPair start;
};

AsdSetup make_asd_setup() {
    Rng rng(33);
    AsdSetup setup;
    const Matrix l = random_matrix(12, 3, rng);
    const Matrix r = random_matrix(10, 3, rng);
    setup.s = multiply_transposed(l, r);
    setup.mask = Matrix(12, 10);
    for (auto& x : setup.mask.data()) {
        x = rng.uniform(0.0, 1.0) < 0.8 ? 1.0 : 0.0;
    }
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < 10; ++j) {
            if (setup.mask(i, j) == 0.0) {
                setup.s(i, j) = 0.0;
            }
        }
    }
    setup.velocity = Matrix(12, 10);
    setup.start = warm_start(setup.s, setup.mask, 3);
    return setup;
}

TEST(AsdWorkspace, ZeroAllocationsAfterWarmup) {
    const AsdSetup setup = make_asd_setup();
    const CsObjective objective(setup.s, setup.mask, setup.velocity, 30.0,
                                1e-6, 1.0, TemporalMode::kVelocity);

    AsdOptions one_iteration;
    one_iteration.max_iterations = 1;
    AsdOptions many_iterations;
    many_iterations.max_iterations = 40;
    many_iterations.relative_tolerance = 0.0;  // force all 40

    PipelineContext warmup_ctx;
    asd_minimize(objective, setup.start.l, setup.start.r, one_iteration,
                 &warmup_ctx);
    PipelineContext steady_ctx;
    asd_minimize(objective, setup.start.l, setup.start.r, many_iterations,
                 &steady_ctx);

    EXPECT_EQ(steady_ctx.counters().asd_iterations, 40u);
    // All scratch buffers exist after iteration 1: running 39 further
    // iterations must not allocate a single additional buffer.
    EXPECT_EQ(steady_ctx.counters().workspace_allocations,
              warmup_ctx.counters().workspace_allocations);
    EXPECT_GT(steady_ctx.counters().workspace_checkouts,
              warmup_ctx.counters().workspace_checkouts);
}

TEST(AsdWorkspace, InstrumentationDoesNotChangeResults) {
    const AsdSetup setup = make_asd_setup();
    const CsObjective objective(setup.s, setup.mask, setup.velocity, 30.0,
                                1e-6, 1.0, TemporalMode::kVelocity);

    PipelineContext ctx;
    const AsdResult with_ctx = asd_minimize(objective, setup.start.l,
                                            setup.start.r, {}, &ctx);
    const AsdResult without_ctx =
        asd_minimize(objective, setup.start.l, setup.start.r, {});

    EXPECT_EQ(with_ctx.iterations, without_ctx.iterations);
    EXPECT_TRUE(with_ctx.l == without_ctx.l);
    EXPECT_TRUE(with_ctx.r == without_ctx.r);
}

// ---- Kernel tiers (DESIGN.md §13) --------------------------------------
//
// The fast tier's contract: agreement with the exact tier to <= 1e-12
// relative, bitwise determinism run-to-run, and independence from how the
// RowExecutor happens to split the destination rows. Shapes below are
// deliberately not multiples of the SIMD widths so every tail path runs.

double max_rel_dev(const Matrix& exact, const Matrix& fast) {
    const auto de = exact.data();
    const auto df = fast.data();
    double worst = 0.0;
    for (std::size_t i = 0; i < de.size(); ++i) {
        const double denom = std::max(std::abs(de[i]), 1.0);
        worst = std::max(worst, std::abs(de[i] - df[i]) / denom);
    }
    return worst;
}

struct TierFixture {
    Matrix a, b, l, r, mask, s, e1, e2;

    TierFixture() {
        Rng rng(55);
        a = random_matrix(37, 29, rng);     // odd dims: all tails exercised
        b = random_matrix(29, 18, rng);
        l = random_matrix(37, 7, rng);
        r = random_matrix(23, 7, rng);
        mask = Matrix(37, 23);
        for (auto& x : mask.data()) {
            x = rng.uniform(0.0, 1.0) < 0.3 ? 0.0 : 1.0;
        }
        s = random_matrix(37, 23, rng);
        e1 = random_matrix(37, 23, rng);
        e2 = random_matrix(37, 23, rng);
    }

    /// Every dispatched kernel once, into fresh destinations.
    struct Results {
        Matrix mul, mul_t, t_mul, masked, had, sub, ax;
    };
    Results run_all() const {
        Results out;
        out.mul = garbage(37, 18);
        multiply_into(out.mul, a, b);
        out.mul_t = garbage(37, 23);
        multiply_transposed_into(out.mul_t, l, r);
        out.t_mul = garbage(29, 7);
        transpose_multiply_into(out.t_mul, a, l);
        out.masked = garbage(37, 23);
        masked_residual_into(out.masked, l, r, mask, s);
        out.had = garbage(37, 23);
        hadamard_into(out.had, e1, e2);
        out.sub = garbage(37, 23);
        subtract_into(out.sub, e1, e2);
        out.ax = Matrix(e1);
        axpy(out.ax, -0.637, e2);
        return out;
    }
};

TEST(KernelTiers, FastAgreesWithExactWithinTolerance) {
    const TierFixture f;
    TierFixture::Results exact;
    {
        KernelTierScope tier(KernelTier::kExact);
        exact = f.run_all();
    }
    TierFixture::Results fast;
    {
        KernelTierScope tier(KernelTier::kFast);
        fast = f.run_all();
    }
    EXPECT_LE(max_rel_dev(exact.mul, fast.mul), 1e-12);
    EXPECT_LE(max_rel_dev(exact.mul_t, fast.mul_t), 1e-12);
    EXPECT_LE(max_rel_dev(exact.t_mul, fast.t_mul), 1e-12);
    EXPECT_LE(max_rel_dev(exact.masked, fast.masked), 1e-12);
    EXPECT_LE(max_rel_dev(exact.had, fast.had), 1e-12);
    EXPECT_LE(max_rel_dev(exact.sub, fast.sub), 1e-12);
    EXPECT_LE(max_rel_dev(exact.ax, fast.ax), 1e-12);
}

TEST(KernelTiers, FastTierIsDeterministicAcrossRuns) {
    const TierFixture f;
    KernelTierScope tier(KernelTier::kFast);
    const TierFixture::Results first = f.run_all();
    const TierFixture::Results second = f.run_all();
    EXPECT_TRUE(first.mul == second.mul);
    EXPECT_TRUE(first.mul_t == second.mul_t);
    EXPECT_TRUE(first.t_mul == second.t_mul);
    EXPECT_TRUE(first.masked == second.masked);
    EXPECT_TRUE(first.had == second.had);
}

// A deliberately lopsided row cover: [0,1) ∪ [1,cut) ∪ [cut,rows). If any
// fast kernel's per-element reduction depended on its [lo,hi) grouping,
// this split would change the bits relative to the serial pass.
class LopsidedExecutor : public RowExecutor {
public:
    void for_rows(std::size_t rows,
                  const std::function<void(std::size_t, std::size_t)>& block)
        override {
        const std::size_t cut = std::max<std::size_t>(1, rows / 3);
        if (rows == 0) {
            return;
        }
        block(0, std::min<std::size_t>(1, rows));
        if (cut > 1) {
            block(1, cut);
        }
        if (rows > cut) {
            block(cut, rows);
        }
    }
};

TEST(KernelTiers, FastTierIndependentOfRowBlocking) {
    const TierFixture f;
    KernelTierScope tier(KernelTier::kFast);
    const TierFixture::Results serial = f.run_all();

    LopsidedExecutor executor;
    set_kernel_row_executor(&executor);
    set_kernel_row_block_threshold(1);  // dispatch even tiny destinations
    const TierFixture::Results split = f.run_all();
    set_kernel_row_executor(nullptr);
    set_kernel_row_block_threshold(0);

    EXPECT_TRUE(serial.mul == split.mul);
    EXPECT_TRUE(serial.mul_t == split.mul_t);
    EXPECT_TRUE(serial.masked == split.masked);
}

// The mixed tier's contract (DESIGN.md §18): the three data-sized
// products run in float32 and agree with exact to <= 1e-4 relative (f32
// rounding, not f64's 1e-12) while the Gram formation and every
// element-wise op stay on the float64 fast path and keep the 1e-12 bound.
TEST(KernelTiers, MixedAgreesWithExactWithinF32Tolerance) {
    const TierFixture f;
    TierFixture::Results exact;
    {
        KernelTierScope tier(KernelTier::kExact);
        exact = f.run_all();
    }
    TierFixture::Results mixed;
    {
        KernelTierScope tier(KernelTier::kMixed);
        mixed = f.run_all();
    }
    // float32-routed kernels: f32 precision, and genuinely f32 (a 1e-12
    // match would mean the mixed dispatch silently fell back to f64).
    EXPECT_LE(max_rel_dev(exact.mul, mixed.mul), 1e-4);
    EXPECT_LE(max_rel_dev(exact.mul_t, mixed.mul_t), 1e-4);
    EXPECT_LE(max_rel_dev(exact.masked, mixed.masked), 1e-4);
    EXPECT_GT(max_rel_dev(exact.mul, mixed.mul), 0.0);
    // float64-kept kernels: Gram/Cholesky inputs and element-wise ops.
    EXPECT_LE(max_rel_dev(exact.t_mul, mixed.t_mul), 1e-12);
    EXPECT_LE(max_rel_dev(exact.had, mixed.had), 1e-12);
    EXPECT_LE(max_rel_dev(exact.sub, mixed.sub), 1e-12);
    EXPECT_LE(max_rel_dev(exact.ax, mixed.ax), 1e-12);
}

TEST(KernelTiers, MixedTierIsDeterministicAcrossRuns) {
    const TierFixture f;
    KernelTierScope tier(KernelTier::kMixed);
    const TierFixture::Results first = f.run_all();
    const TierFixture::Results second = f.run_all();
    EXPECT_TRUE(first.mul == second.mul);
    EXPECT_TRUE(first.mul_t == second.mul_t);
    EXPECT_TRUE(first.masked == second.masked);
    EXPECT_TRUE(first.t_mul == second.t_mul);
}

TEST(KernelTiers, MixedTierIndependentOfRowBlocking) {
    const TierFixture f;
    KernelTierScope tier(KernelTier::kMixed);
    const TierFixture::Results serial = f.run_all();

    LopsidedExecutor executor;
    set_kernel_row_executor(&executor);
    set_kernel_row_block_threshold(1);
    const TierFixture::Results split = f.run_all();
    set_kernel_row_executor(nullptr);
    set_kernel_row_block_threshold(0);

    EXPECT_TRUE(serial.mul == split.mul);
    EXPECT_TRUE(serial.mul_t == split.mul_t);
    EXPECT_TRUE(serial.masked == split.masked);
}

TEST(KernelTiers, RowBlockThresholdOverrideAndRestore) {
    EXPECT_EQ(kernel_row_block_threshold(), kKernelRowBlockThreshold);
    set_kernel_row_block_threshold(7);
    EXPECT_EQ(kernel_row_block_threshold(), 7u);
    set_kernel_row_block_threshold(0);  // 0 restores the compile-time value
    EXPECT_EQ(kernel_row_block_threshold(), kKernelRowBlockThreshold);
}

TEST(KernelTiers, ScopeRestoresPreviousTier) {
    EXPECT_EQ(active_kernel_tier(), KernelTier::kExact);
    {
        KernelTierScope fast(KernelTier::kFast);
        EXPECT_EQ(active_kernel_tier(), KernelTier::kFast);
        {
            KernelTierScope exact(KernelTier::kExact);
            EXPECT_EQ(active_kernel_tier(), KernelTier::kExact);
        }
        EXPECT_EQ(active_kernel_tier(), KernelTier::kFast);
    }
    EXPECT_EQ(active_kernel_tier(), KernelTier::kExact);
}

TEST(KernelTiers, AliasedDestinationThrows) {
    Rng rng(56);
    Matrix sq = random_matrix(6, 6, rng);
    const Matrix other = random_matrix(6, 6, rng);

    EXPECT_THROW(subtract_into(sq, sq, other), Error);
    EXPECT_THROW(subtract_into(sq, other, sq), Error);
    EXPECT_THROW(hadamard_into(sq, sq, other), Error);
    EXPECT_THROW(multiply_into(sq, sq, other), Error);
    EXPECT_THROW(multiply_into(sq, other, sq), Error);
    EXPECT_THROW(multiply_transposed_into(sq, sq, other), Error);
    EXPECT_THROW(transpose_multiply_into(sq, sq, other), Error);
    EXPECT_THROW(transpose_into(sq, sq), Error);
    EXPECT_THROW(temporal_diff_into(sq, sq), Error);
    EXPECT_THROW(temporal_diff_adjoint_into(sq, sq), Error);

    Matrix masked = random_matrix(6, 6, rng);
    const Matrix lf = random_matrix(6, 2, rng);
    const Matrix rf = random_matrix(6, 2, rng);
    EXPECT_THROW(masked_residual_into(masked, lf, rf, sq, masked), Error);
    EXPECT_THROW(masked_residual_into(masked, lf, rf, masked, sq), Error);

    // The two documented exceptions stay legal: axpy updates y in place,
    // copy_into tolerates the trivial self-copy.
    EXPECT_NO_THROW(axpy(sq, 0.5, other));
    EXPECT_NO_THROW(copy_into(sq, sq));
}

TEST(KernelTiers, PerKernelFlopCountersAttributed) {
    Rng rng(57);
    const Matrix a = random_matrix(5, 3, rng);
    const Matrix b = random_matrix(3, 4, rng);
    const Matrix c = random_matrix(6, 3, rng);
    const Matrix d = random_matrix(5, 4, rng);

    PipelineCounters counters;
    Matrix ab(5, 4);
    multiply_into(ab, a, b, &counters);
    EXPECT_EQ(counters.flops_multiply, 2u * 5u * 4u * 3u);

    Matrix act(5, 6);
    multiply_transposed_into(act, a, c, &counters);
    EXPECT_EQ(counters.flops_multiply_transposed, 2u * 5u * 6u * 3u);

    Matrix atd(3, 4);
    transpose_multiply_into(atd, a, d, &counters);
    EXPECT_EQ(counters.flops_transpose_multiply, 2u * 3u * 4u * 5u);

    const Matrix mask = Matrix::constant(5, 6, 1.0);
    const Matrix s = random_matrix(5, 6, rng);
    Matrix res(5, 6);
    masked_residual_into(res, a, c, mask, s, &counters);
    EXPECT_EQ(counters.flops_masked_residual, 2u * 5u * 6u * 3u);

    // The slots sum to the total the pipeline already reported.
    EXPECT_EQ(counters.gemm_flops,
              counters.flops_multiply + counters.flops_multiply_transposed +
                  counters.flops_transpose_multiply +
                  counters.flops_masked_residual);
}

TEST(KernelTiers, BlockedRandomizedSvdBitIdenticalUnderExactTier) {
    Rng rng(58);
    const Matrix a = random_matrix(30, 22, rng);
    const FactorPair plain = truncated_factors_randomized(a, 5, 8, 2, 777);
    const FactorPair blocked =
        truncated_factors_randomized_blocked(a, 5, 8, 2, 777);
    EXPECT_TRUE(plain.l == blocked.l);
    EXPECT_TRUE(plain.r == blocked.r);
}

TEST(KernelTiers, BlockedRandomizedSvdFastTierStaysClose) {
    Rng rng(59);
    const Matrix a = random_matrix(30, 22, rng);
    const FactorPair exact = truncated_factors_randomized_blocked(a, 5);
    KernelTierScope tier(KernelTier::kFast);
    const FactorPair fast = truncated_factors_randomized_blocked(a, 5);
    // The range finder feeds a warm start, not a final answer; kernel
    // rounding perturbs the subspace slightly, so the bound here is the
    // warm start's own tolerance, not the single-kernel 1e-12.
    EXPECT_LE(max_rel_dev(exact.l, fast.l), 1e-6);
    EXPECT_LE(max_rel_dev(exact.r, fast.r), 1e-6);
}

}  // namespace
}  // namespace mcs
