// Tests for the output-parameter kernels and the Workspace arena.
//
// The `_into` kernels promise bit-for-bit identity with the value-returning
// ops of linalg/ops.hpp (same loop order, same rounding), so every
// equivalence assertion here uses exact Matrix equality, not a tolerance.
// The Workspace tests pin down the recycling contract the ASD solver's
// zero-allocation steady state depends on.
#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/context.hpp"
#include "common/rng.hpp"
#include "cs/asd.hpp"
#include "cs/init.hpp"
#include "cs/objective.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/ops.hpp"
#include "linalg/temporal.hpp"

namespace mcs {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& x : m.data()) {
        x = rng.uniform(-2.0, 2.0);
    }
    return m;
}

// Destination pre-filled with garbage: passes only if fully overwritten.
Matrix garbage(std::size_t rows, std::size_t cols) {
    return Matrix::constant(rows, cols, -777.25);
}

TEST(Kernels, ElementwiseMatchValueOpsExactly) {
    Rng rng(7);
    const Matrix a = random_matrix(5, 4, rng);
    const Matrix b = random_matrix(5, 4, rng);

    Matrix dst = garbage(5, 4);
    copy_into(dst, a);
    EXPECT_TRUE(dst == a);

    dst = garbage(5, 4);
    subtract_into(dst, a, b);
    EXPECT_TRUE(dst == subtract(a, b));

    dst = garbage(5, 4);
    hadamard_into(dst, a, b);
    EXPECT_TRUE(dst == hadamard(a, b));
}

TEST(Kernels, AxpyMatchesScaleAddExactly) {
    Rng rng(8);
    const Matrix y0 = random_matrix(6, 3, rng);
    const Matrix x = random_matrix(6, 3, rng);
    const double alpha = -0.3717;

    Matrix y = y0;
    axpy(y, alpha, x);
    EXPECT_TRUE(y == add(y0, scale(x, alpha)));
}

TEST(Kernels, ProductsMatchValueOpsExactly) {
    Rng rng(9);
    const Matrix a = random_matrix(5, 3, rng);
    const Matrix b = random_matrix(3, 4, rng);
    const Matrix c = random_matrix(6, 3, rng);   // for a·cᵀ (shared cols)
    const Matrix d = random_matrix(5, 4, rng);   // for aᵀ·d (shared rows)

    Matrix ab = garbage(5, 4);
    multiply_into(ab, a, b);
    EXPECT_TRUE(ab == multiply(a, b));

    Matrix act = garbage(5, 6);
    multiply_transposed_into(act, a, c);
    EXPECT_TRUE(act == multiply_transposed(a, c));

    Matrix atd = garbage(3, 4);
    transpose_multiply_into(atd, a, d);
    EXPECT_TRUE(atd == transpose_multiply(a, d));

    Matrix at = garbage(3, 5);
    transpose_into(at, a);
    EXPECT_TRUE(at == transpose(a));
}

TEST(Kernels, MaskedResidualMatchesValueOpExactly) {
    Rng rng(10);
    const Matrix l = random_matrix(6, 2, rng);
    const Matrix r = random_matrix(5, 2, rng);
    const Matrix s = random_matrix(6, 5, rng);
    Matrix mask(6, 5);
    for (auto& x : mask.data()) {
        x = rng.uniform(0.0, 1.0) < 0.5 ? 0.0 : 1.0;
    }

    Matrix dst = garbage(6, 5);
    masked_residual_into(dst, l, r, mask, s);
    EXPECT_TRUE(dst == masked_residual(l, r, mask, s));
}

TEST(Kernels, GramAndTemporalMatchValueOpsExactly) {
    Rng rng(11);
    const Matrix a = random_matrix(7, 3, rng);

    Matrix gram = garbage(3, 3);
    gram_with_ridge_into(gram, a, 0.25);
    EXPECT_TRUE(gram == gram_with_ridge(a, 0.25));

    const Matrix x = random_matrix(4, 6, rng);
    Matrix diff = garbage(4, 6);
    temporal_diff_into(diff, x);
    EXPECT_TRUE(diff == temporal_diff(x));

    Matrix adj = garbage(4, 6);
    temporal_diff_adjoint_into(adj, x);
    EXPECT_TRUE(adj == temporal_diff_adjoint(x));
}

TEST(Kernels, GemmFlopsAreCounted) {
    PipelineCounters counters;
    const Matrix a(5, 3, 1.0);
    const Matrix b(3, 4, 1.0);
    Matrix dst(5, 4);
    multiply_into(dst, a, b, &counters);
    EXPECT_EQ(counters.gemm_flops, 2u * 5u * 4u * 3u);
}

TEST(Kernels, ShapeMismatchThrows) {
    Matrix dst(2, 2);
    const Matrix a(2, 3);
    const Matrix b(3, 2);
    EXPECT_THROW(copy_into(dst, a), Error);
    EXPECT_THROW(multiply_into(dst, a, a), Error);  // inner dims disagree
    Matrix wrong(3, 3);
    EXPECT_THROW(multiply_into(wrong, a, b), Error);  // dst shape wrong
}

TEST(Kernels, CholeskyInPlaceMatchesOutOfPlace) {
    Rng rng(12);
    const Matrix a = random_matrix(6, 4, rng);
    const Matrix spd = gram_with_ridge(a, 1.0);

    Matrix factor = spd;
    cholesky_in_place(factor);
    const Matrix reference = cholesky(spd);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            EXPECT_DOUBLE_EQ(factor(i, j), reference(i, j));
        }
    }

    const Matrix rhs = random_matrix(4, 3, rng);
    Matrix solved = rhs;
    cholesky_solve_in_place(reference, solved);
    EXPECT_TRUE(solved == solve_spd(spd, rhs));
}

TEST(Workspace, RecyclesExactShapes) {
    PipelineCounters counters;
    Workspace ws(&counters);

    Matrix first = ws.acquire(3, 4);
    ws.release(std::move(first));
    Matrix second = ws.acquire(3, 4);  // must reuse the pooled buffer
    EXPECT_EQ(ws.created(), 1u);
    EXPECT_EQ(counters.workspace_allocations, 1u);
    EXPECT_EQ(counters.workspace_checkouts, 2u);

    Matrix other = ws.acquire(4, 3);  // different shape: fresh allocation
    EXPECT_EQ(ws.created(), 2u);
    ws.release(std::move(second));
    ws.release(std::move(other));
    EXPECT_EQ(ws.pooled(), 2u);
}

TEST(Workspace, ScratchLeaseReturnsOnScopeExit) {
    Workspace ws;
    {
        Scratch s(ws, 2, 5);
        s->fill(1.0);
        EXPECT_EQ((*s).rows(), 2u);
        EXPECT_EQ(ws.pooled(), 0u);
    }
    EXPECT_EQ(ws.pooled(), 1u);
    EXPECT_EQ(ws.created(), 1u);
}

// ---- ASD steady-state regression ---------------------------------------

struct AsdSetup {
    Matrix s;
    Matrix mask;
    Matrix velocity;
    FactorPair start;
};

AsdSetup make_asd_setup() {
    Rng rng(33);
    AsdSetup setup;
    const Matrix l = random_matrix(12, 3, rng);
    const Matrix r = random_matrix(10, 3, rng);
    setup.s = multiply_transposed(l, r);
    setup.mask = Matrix(12, 10);
    for (auto& x : setup.mask.data()) {
        x = rng.uniform(0.0, 1.0) < 0.8 ? 1.0 : 0.0;
    }
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < 10; ++j) {
            if (setup.mask(i, j) == 0.0) {
                setup.s(i, j) = 0.0;
            }
        }
    }
    setup.velocity = Matrix(12, 10);
    setup.start = warm_start(setup.s, setup.mask, 3);
    return setup;
}

TEST(AsdWorkspace, ZeroAllocationsAfterWarmup) {
    const AsdSetup setup = make_asd_setup();
    const CsObjective objective(setup.s, setup.mask, setup.velocity, 30.0,
                                1e-6, 1.0, TemporalMode::kVelocity);

    AsdOptions one_iteration;
    one_iteration.max_iterations = 1;
    AsdOptions many_iterations;
    many_iterations.max_iterations = 40;
    many_iterations.relative_tolerance = 0.0;  // force all 40

    PipelineContext warmup_ctx;
    asd_minimize(objective, setup.start.l, setup.start.r, one_iteration,
                 &warmup_ctx);
    PipelineContext steady_ctx;
    asd_minimize(objective, setup.start.l, setup.start.r, many_iterations,
                 &steady_ctx);

    EXPECT_EQ(steady_ctx.counters().asd_iterations, 40u);
    // All scratch buffers exist after iteration 1: running 39 further
    // iterations must not allocate a single additional buffer.
    EXPECT_EQ(steady_ctx.counters().workspace_allocations,
              warmup_ctx.counters().workspace_allocations);
    EXPECT_GT(steady_ctx.counters().workspace_checkouts,
              warmup_ctx.counters().workspace_checkouts);
}

TEST(AsdWorkspace, InstrumentationDoesNotChangeResults) {
    const AsdSetup setup = make_asd_setup();
    const CsObjective objective(setup.s, setup.mask, setup.velocity, 30.0,
                                1e-6, 1.0, TemporalMode::kVelocity);

    PipelineContext ctx;
    const AsdResult with_ctx = asd_minimize(objective, setup.start.l,
                                            setup.start.r, {}, &ctx);
    const AsdResult without_ctx =
        asd_minimize(objective, setup.start.l, setup.start.r, {});

    EXPECT_EQ(with_ctx.iterations, without_ctx.iterations);
    EXPECT_TRUE(with_ctx.l == without_ctx.l);
    EXPECT_TRUE(with_ctx.r == without_ctx.r);
}

}  // namespace
}  // namespace mcs
