// Unit tests for the dense Matrix type.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace mcs {
namespace {

TEST(Matrix, DefaultIsEmpty) {
    const Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructWithFill) {
    const Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_DOUBLE_EQ(m(i, j), 1.5);
        }
    }
}

TEST(Matrix, InitializerList) {
    const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, InitializerListRejectsRaggedRows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(Matrix, FromVectorChecksSize) {
    const Matrix m(2, 2, std::vector<double>{1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW(Matrix(2, 2, std::vector<double>{1, 2, 3}), Error);
}

TEST(Matrix, RowMajorLayout) {
    Matrix m(2, 3);
    m(0, 0) = 1;
    m(0, 2) = 3;
    m(1, 0) = 4;
    const auto data = m.data();
    EXPECT_DOUBLE_EQ(data[0], 1.0);
    EXPECT_DOUBLE_EQ(data[2], 3.0);
    EXPECT_DOUBLE_EQ(data[3], 4.0);
}

TEST(Matrix, CheckedAccessThrows) {
    Matrix m(2, 2);
    EXPECT_NO_THROW(m.at(1, 1));
    EXPECT_THROW(m.at(2, 0), Error);
    EXPECT_THROW(m.at(0, 2), Error);
    const Matrix& cm = m;
    EXPECT_THROW(cm.at(2, 0), Error);
}

TEST(Matrix, RowView) {
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    auto row = m.row(1);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_DOUBLE_EQ(row[2], 6.0);
    row[0] = 9.0;
    EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
    EXPECT_THROW(m.row(2), Error);
}

TEST(Matrix, ColumnCopy) {
    const Matrix m{{1, 2}, {3, 4}, {5, 6}};
    const auto col = m.column(1);
    ASSERT_EQ(col.size(), 3u);
    EXPECT_DOUBLE_EQ(col[2], 6.0);
    EXPECT_THROW(m.column(2), Error);
}

TEST(Matrix, Fill) {
    Matrix m(2, 2, 1.0);
    m.fill(7.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
}

TEST(Matrix, Block) {
    const Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    const Matrix b = m.block(1, 1, 2, 2);
    EXPECT_EQ(b.rows(), 2u);
    EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(b(1, 1), 9.0);
    EXPECT_THROW(m.block(2, 2, 2, 2), Error);
}

TEST(Matrix, CompoundArithmetic) {
    Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{10, 20}, {30, 40}};
    a += b;
    EXPECT_DOUBLE_EQ(a(1, 1), 44.0);
    a -= b;
    EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
    a *= 2.0;
    EXPECT_DOUBLE_EQ(a(0, 1), 4.0);
}

TEST(Matrix, CompoundArithmeticShapeChecked) {
    Matrix a(2, 2);
    const Matrix b(2, 3);
    EXPECT_THROW(a += b, Error);
    EXPECT_THROW(a -= b, Error);
}

TEST(Matrix, Identity) {
    const Matrix id = Matrix::identity(3);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
        }
    }
}

TEST(Matrix, EqualityAndApprox) {
    const Matrix a{{1, 2}, {3, 4}};
    Matrix b = a;
    EXPECT_TRUE(a == b);
    b(0, 0) += 1e-9;
    EXPECT_FALSE(a == b);
    EXPECT_TRUE(approx_equal(a, b, 1e-8));
    EXPECT_FALSE(approx_equal(a, b, 1e-10));
    EXPECT_FALSE(approx_equal(a, Matrix(2, 3), 1.0));
}

TEST(Matrix, ShapeString) {
    EXPECT_EQ(Matrix(3, 5).shape_string(), "Matrix(3x5)");
}

}  // namespace
}  // namespace mcs
