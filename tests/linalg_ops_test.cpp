// Unit and property tests for the matrix kernels.
#include "linalg/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mcs {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& x : m.data()) {
        x = rng.uniform(-2.0, 2.0);
    }
    return m;
}

TEST(Ops, AddSubtractScale) {
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{4, 3}, {2, 1}};
    const Matrix sum = add(a, b);
    EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
    const Matrix diff = subtract(sum, b);
    EXPECT_TRUE(approx_equal(diff, a, 1e-15));
    const Matrix scaled = scale(a, -2.0);
    EXPECT_DOUBLE_EQ(scaled(1, 1), -8.0);
}

TEST(Ops, Hadamard) {
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{0, 1}, {1, 0}};
    const Matrix h = hadamard(a, b);
    EXPECT_DOUBLE_EQ(h(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(h(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(h(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(h(1, 1), 0.0);
    EXPECT_THROW(hadamard(a, Matrix(1, 2)), Error);
}

TEST(Ops, MultiplyKnownValues) {
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{5, 6}, {7, 8}};
    const Matrix c = multiply(a, b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Ops, MultiplyShapeChecked) {
    EXPECT_THROW(multiply(Matrix(2, 3), Matrix(2, 3)), Error);
}

TEST(Ops, MultiplyIdentityIsNoop) {
    Rng rng(1);
    const Matrix a = random_matrix(4, 4, rng);
    EXPECT_TRUE(approx_equal(multiply(a, Matrix::identity(4)), a, 1e-14));
    EXPECT_TRUE(approx_equal(multiply(Matrix::identity(4), a), a, 1e-14));
}

TEST(Ops, MultiplyTransposedMatchesExplicit) {
    Rng rng(2);
    const Matrix a = random_matrix(3, 5, rng);
    const Matrix b = random_matrix(4, 5, rng);
    const Matrix direct = multiply_transposed(a, b);
    const Matrix reference = multiply(a, transpose(b));
    EXPECT_TRUE(approx_equal(direct, reference, 1e-12));
}

TEST(Ops, TransposeMultiplyMatchesExplicit) {
    Rng rng(3);
    const Matrix a = random_matrix(5, 3, rng);
    const Matrix b = random_matrix(5, 4, rng);
    const Matrix direct = transpose_multiply(a, b);
    const Matrix reference = multiply(transpose(a), b);
    EXPECT_TRUE(approx_equal(direct, reference, 1e-12));
}

TEST(Ops, TransposeInvolution) {
    Rng rng(4);
    const Matrix a = random_matrix(3, 7, rng);
    EXPECT_TRUE(approx_equal(transpose(transpose(a)), a, 0.0));
}

TEST(Ops, MaskedResidualMatchesDefinition) {
    Rng rng(5);
    const Matrix l = random_matrix(4, 2, rng);
    const Matrix r = random_matrix(6, 2, rng);
    Matrix mask(4, 6);
    for (auto& x : mask.data()) {
        x = rng.bernoulli(0.6) ? 1.0 : 0.0;
    }
    Matrix s = hadamard(multiply_transposed(random_matrix(4, 2, rng),
                                            random_matrix(6, 2, rng)),
                        mask);
    const Matrix residual = masked_residual(l, r, mask, s);
    const Matrix reference =
        subtract(hadamard(multiply_transposed(l, r), mask), s);
    EXPECT_TRUE(approx_equal(residual, reference, 1e-12));
}

TEST(Ops, MaskedResidualShapeChecked) {
    EXPECT_THROW(
        masked_residual(Matrix(4, 2), Matrix(6, 3), Matrix(4, 6),
                        Matrix(4, 6)),
        Error);
    EXPECT_THROW(
        masked_residual(Matrix(4, 2), Matrix(6, 2), Matrix(4, 5),
                        Matrix(4, 5)),
        Error);
}

TEST(Ops, FrobeniusNormKnown) {
    const Matrix a{{3, 0}, {0, 4}};
    EXPECT_DOUBLE_EQ(frobenius_norm_squared(a), 25.0);
    EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
}

TEST(Ops, FrobeniusDotMatchesNorm) {
    Rng rng(6);
    const Matrix a = random_matrix(3, 3, rng);
    EXPECT_NEAR(frobenius_dot(a, a), frobenius_norm_squared(a), 1e-12);
}

TEST(Ops, FrobeniusDotBilinear) {
    Rng rng(7);
    const Matrix a = random_matrix(3, 4, rng);
    const Matrix b = random_matrix(3, 4, rng);
    const Matrix c = random_matrix(3, 4, rng);
    EXPECT_NEAR(frobenius_dot(add(a, b), c),
                frobenius_dot(a, c) + frobenius_dot(b, c), 1e-12);
}

TEST(Ops, MaxAbsAndSum) {
    const Matrix a{{-5, 2}, {3, -1}};
    EXPECT_DOUBLE_EQ(max_abs(a), 5.0);
    EXPECT_DOUBLE_EQ(element_sum(a), -1.0);
}

TEST(Ops, CountEqual) {
    const Matrix a{{0, 1}, {1, 1}};
    EXPECT_EQ(count_equal(a, 1.0), 3u);
    EXPECT_EQ(count_equal(a, 0.0), 1u);
    EXPECT_EQ(count_equal(a, 2.0), 0u);
}

// Property sweep: (A·Bᵀ)ᵀ == B·Aᵀ for random shapes.
class OpsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpsProperty, TransposeOfProductIdentity) {
    Rng rng(GetParam());
    const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const auto cols = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const auto inner = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const Matrix a = random_matrix(rows, inner, rng);
    const Matrix b = random_matrix(cols, inner, rng);
    const Matrix left = transpose(multiply_transposed(a, b));
    const Matrix right = multiply_transposed(b, a);
    EXPECT_TRUE(approx_equal(left, right, 1e-12));
}

TEST_P(OpsProperty, MultiplyAssociativity) {
    Rng rng(GetParam() + 1000);
    const Matrix a = random_matrix(3, 4, rng);
    const Matrix b = random_matrix(4, 5, rng);
    const Matrix c = random_matrix(5, 2, rng);
    const Matrix left = multiply(multiply(a, b), c);
    const Matrix right = multiply(a, multiply(b, c));
    EXPECT_TRUE(approx_equal(left, right, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, OpsProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace mcs
