// Unit tests for descriptive statistics.
#include "linalg/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mcs {
namespace {

TEST(Stats, MedianOdd) {
    const std::vector<double> v{5, 1, 3};
    EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, MedianEven) {
    const std::vector<double> v{4, 1, 3, 2};
    EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, MedianSingleAndRobustness) {
    EXPECT_DOUBLE_EQ(median(std::vector<double>{7}), 7.0);
    // The median ignores one huge outlier in five points.
    const std::vector<double> v{1, 2, 3, 4, 1e9};
    EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, MedianDoesNotMutateInput) {
    const std::vector<double> v{3, 1, 2};
    (void)median(v);
    EXPECT_EQ(v[0], 3.0);
    EXPECT_EQ(v[1], 1.0);
}

TEST(Stats, MedianEmptyThrows) {
    EXPECT_THROW(median(std::vector<double>{}), Error);
}

TEST(Stats, MeanAndVariance) {
    const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_THROW(variance(std::vector<double>{1.0}), Error);
}

TEST(Stats, QuantileInterpolates) {
    const std::vector<double> v{10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
    EXPECT_NEAR(quantile(v, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(Stats, QuantileValidation) {
    const std::vector<double> v{1.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.7), 1.0);
    EXPECT_THROW(quantile(v, -0.1), Error);
    EXPECT_THROW(quantile(v, 1.1), Error);
    EXPECT_THROW(quantile(std::vector<double>{}, 0.5), Error);
}

TEST(Stats, EmpiricalCdfBasics) {
    const std::vector<double> v{1, 2, 2, 3};
    const auto cdf = empirical_cdf(v);
    ASSERT_EQ(cdf.size(), 3u);  // duplicates collapsed
    EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
    EXPECT_DOUBLE_EQ(cdf[0].probability, 0.25);
    EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
    EXPECT_DOUBLE_EQ(cdf[1].probability, 0.75);
    EXPECT_DOUBLE_EQ(cdf[2].probability, 1.0);
}

TEST(Stats, CdfAtEvaluation) {
    const std::vector<double> v{1, 2, 3, 4};
    const auto cdf = empirical_cdf(v);
    EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf_at(cdf, 100.0), 1.0);
}

TEST(Stats, CdfInverse) {
    const std::vector<double> v{10, 20, 30, 40};
    const auto cdf = empirical_cdf(v);
    EXPECT_DOUBLE_EQ(cdf_inverse(cdf, 0.25), 10.0);
    EXPECT_DOUBLE_EQ(cdf_inverse(cdf, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(cdf_inverse(cdf, 0.51), 30.0);
    EXPECT_DOUBLE_EQ(cdf_inverse(cdf, 1.0), 40.0);
}

TEST(Stats, CdfRoundTripProperty) {
    Rng rng(9);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i) {
        v.push_back(rng.normal());
    }
    const auto cdf = empirical_cdf(v);
    // For every sample point, cdf_at(inverse(p)) >= p.
    for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        EXPECT_GE(cdf_at(cdf, cdf_inverse(cdf, p)), p);
    }
}

// Property: median lies between min and max; 50% quantile == median for
// odd-sized samples.
class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, MedianWithinRange) {
    Rng rng(GetParam());
    std::vector<double> v;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 50));
    for (std::size_t i = 0; i < n; ++i) {
        v.push_back(rng.uniform(-100.0, 100.0));
    }
    const double m = median(v);
    EXPECT_GE(m, *std::min_element(v.begin(), v.end()));
    EXPECT_LE(m, *std::max_element(v.begin(), v.end()));
}

INSTANTIATE_TEST_SUITE_P(Random, StatsProperty,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace mcs
