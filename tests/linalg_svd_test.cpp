// Unit and property tests for the one-sided Jacobi SVD.
#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "linalg/ops.hpp"

namespace mcs {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& x : m.data()) {
        x = rng.uniform(-1.0, 1.0);
    }
    return m;
}

// Checks Uᵀ·U == I for the non-zero columns of U.
void expect_orthonormal_columns(const Matrix& u, double tol) {
    const Matrix gram = transpose_multiply(u, u);
    for (std::size_t i = 0; i < gram.rows(); ++i) {
        for (std::size_t j = 0; j < gram.cols(); ++j) {
            const double expected = (i == j) ? 1.0 : 0.0;
            EXPECT_NEAR(gram(i, j), expected, tol)
                << "gram(" << i << "," << j << ")";
        }
    }
}

TEST(Svd, DiagonalMatrix) {
    const Matrix a{{3, 0}, {0, 2}};
    const SvdResult r = svd(a);
    ASSERT_EQ(r.singular_values.size(), 2u);
    EXPECT_NEAR(r.singular_values[0], 3.0, 1e-12);
    EXPECT_NEAR(r.singular_values[1], 2.0, 1e-12);
}

TEST(Svd, SingularValuesSortedDescending) {
    Rng rng(1);
    const Matrix a = random_matrix(8, 6, rng);
    const SvdResult r = svd(a);
    for (std::size_t i = 1; i < r.singular_values.size(); ++i) {
        EXPECT_LE(r.singular_values[i], r.singular_values[i - 1]);
        EXPECT_GE(r.singular_values[i], 0.0);
    }
}

TEST(Svd, ReconstructsTallMatrix) {
    Rng rng(2);
    const Matrix a = random_matrix(10, 4, rng);
    const SvdResult r = svd(a);
    EXPECT_TRUE(approx_equal(r.reconstruct(), a, 1e-10));
}

TEST(Svd, ReconstructsWideMatrix) {
    Rng rng(3);
    const Matrix a = random_matrix(4, 12, rng);
    const SvdResult r = svd(a);
    EXPECT_EQ(r.u.rows(), 4u);
    EXPECT_EQ(r.v.rows(), 12u);
    EXPECT_TRUE(approx_equal(r.reconstruct(), a, 1e-10));
}

TEST(Svd, FactorsAreOrthonormal) {
    Rng rng(4);
    const Matrix a = random_matrix(9, 5, rng);
    const SvdResult r = svd(a);
    expect_orthonormal_columns(r.u, 1e-10);
    expect_orthonormal_columns(r.v, 1e-10);
}

TEST(Svd, FrobeniusNormIsL2OfSingularValues) {
    Rng rng(5);
    const Matrix a = random_matrix(7, 7, rng);
    const SvdResult r = svd(a);
    double sum_sq = 0.0;
    for (const double s : r.singular_values) {
        sum_sq += s * s;
    }
    EXPECT_NEAR(sum_sq, frobenius_norm_squared(a), 1e-9);
}

TEST(Svd, ExactlyLowRankMatrix) {
    // Rank-2 matrix: outer-product construction.
    Rng rng(6);
    const Matrix l = random_matrix(8, 2, rng);
    const Matrix r = random_matrix(6, 2, rng);
    const Matrix a = multiply_transposed(l, r);
    const SvdResult result = svd(a);
    EXPECT_EQ(numerical_rank(result.singular_values, 1e-9), 2u);
    // Rank-2 truncation reproduces the matrix.
    EXPECT_TRUE(approx_equal(result.reconstruct(2), a, 1e-9));
}

TEST(Svd, ZeroMatrix) {
    const Matrix a(4, 3);
    const SvdResult r = svd(a);
    for (const double s : r.singular_values) {
        EXPECT_DOUBLE_EQ(s, 0.0);
    }
    EXPECT_EQ(numerical_rank(r.singular_values), 0u);
}

TEST(Svd, EmptyMatrixThrows) {
    EXPECT_THROW(svd(Matrix()), Error);
}

TEST(Svd, KnownRankOneValues) {
    // A = u·vᵀ with |u| = 5, |v| = √2 ⇒ σ₁ = 5√2.
    const Matrix a{{3 * 1.0, 3 * 1.0}, {4 * 1.0, 4 * 1.0}};
    const SvdResult r = svd(a);
    EXPECT_NEAR(r.singular_values[0], 5.0 * std::sqrt(2.0), 1e-10);
    EXPECT_NEAR(r.singular_values[1], 0.0, 1e-10);
}

TEST(Svd, TruncatedFactorsReconstructLowRankInput) {
    Rng rng(7);
    const Matrix l = random_matrix(10, 3, rng);
    const Matrix r = random_matrix(8, 3, rng);
    const Matrix a = multiply_transposed(l, r);
    const FactorPair factors = truncated_factors(a, 3);
    EXPECT_EQ(factors.l.rows(), 10u);
    EXPECT_EQ(factors.l.cols(), 3u);
    EXPECT_EQ(factors.r.rows(), 8u);
    const Matrix rebuilt = multiply_transposed(factors.l, factors.r);
    EXPECT_TRUE(approx_equal(rebuilt, a, 1e-9));
}

TEST(Svd, TruncatedFactorsIsBestApproximation) {
    // Eckart–Young: the rank-k truncation error equals √(Σ_{i>k} σᵢ²).
    Rng rng(8);
    const Matrix a = random_matrix(9, 7, rng);
    const SvdResult r = svd(a);
    const std::size_t k = 3;
    const FactorPair factors = truncated_factors(a, k);
    const Matrix approx = multiply_transposed(factors.l, factors.r);
    double tail = 0.0;
    for (std::size_t i = k; i < r.singular_values.size(); ++i) {
        tail += r.singular_values[i] * r.singular_values[i];
    }
    EXPECT_NEAR(frobenius_norm_squared(subtract(a, approx)), tail, 1e-8);
}

TEST(Svd, TruncatedFactorsRankChecked) {
    const Matrix a(4, 3, 1.0);
    EXPECT_THROW(truncated_factors(a, 0), Error);
    EXPECT_THROW(truncated_factors(a, 4), Error);
}

TEST(Svd, EnergyCdfMonotoneEndingAtOne) {
    const std::vector<double> sigma{5.0, 3.0, 1.0, 1.0};
    const auto cdf = singular_energy_cdf(sigma);
    ASSERT_EQ(cdf.size(), 4u);
    EXPECT_NEAR(cdf[0], 0.5, 1e-12);
    EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i], cdf[i - 1]);
    }
}

TEST(Svd, EnergyCdfOfZeros) {
    const auto cdf = singular_energy_cdf({0.0, 0.0});
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.0);
}

// Property sweep over random shapes: reconstruction + orthonormality.
class SvdProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SvdProperty, ReconstructionAndOrthogonality) {
    const auto [rows, cols] = GetParam();
    Rng rng(rows * 100 + cols);
    const Matrix a = random_matrix(rows, cols, rng);
    const SvdResult r = svd(a);
    EXPECT_TRUE(approx_equal(r.reconstruct(), a, 1e-9));
    expect_orthonormal_columns(r.v, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(5, 1),
                      std::make_tuple(1, 5), std::make_tuple(3, 3),
                      std::make_tuple(12, 5), std::make_tuple(5, 12),
                      std::make_tuple(20, 20), std::make_tuple(2, 17)));


TEST(RandomizedSvd, RecoversLowRankMatrixExactly) {
    Rng rng(9);
    const Matrix l = random_matrix(30, 4, rng);
    const Matrix r = random_matrix(50, 4, rng);
    const Matrix a = multiply_transposed(l, r);
    const FactorPair f = truncated_factors_randomized(a, 4);
    const Matrix rebuilt = multiply_transposed(f.l, f.r);
    const double rel = frobenius_norm(subtract(rebuilt, a)) /
                       frobenius_norm(a);
    EXPECT_LT(rel, 1e-8);
}

TEST(RandomizedSvd, ApproximatesFullRankTruncation) {
    // On a general matrix the randomized rank-k factors must land close to
    // the optimal (Eckart-Young) rank-k error.
    Rng rng(10);
    const Matrix a = random_matrix(40, 60, rng);
    const std::size_t k = 10;
    const FactorPair exact = truncated_factors(a, k);
    const FactorPair approx = truncated_factors_randomized(a, k);
    const double err_exact = frobenius_norm(
        subtract(multiply_transposed(exact.l, exact.r), a));
    const double err_approx = frobenius_norm(
        subtract(multiply_transposed(approx.l, approx.r), a));
    EXPECT_LE(err_approx, 1.15 * err_exact);
}

TEST(RandomizedSvd, DeterministicForFixedSeed) {
    Rng rng(11);
    const Matrix a = random_matrix(20, 30, rng);
    const FactorPair f1 = truncated_factors_randomized(a, 5, 8, 2, 777);
    const FactorPair f2 = truncated_factors_randomized(a, 5, 8, 2, 777);
    EXPECT_TRUE(f1.l == f2.l);
    EXPECT_TRUE(f1.r == f2.r);
}

TEST(RandomizedSvd, RankValidated) {
    const Matrix a(4, 3, 1.0);
    EXPECT_THROW(truncated_factors_randomized(a, 0), Error);
    EXPECT_THROW(truncated_factors_randomized(a, 4), Error);
}

}  // namespace
}  // namespace mcs

