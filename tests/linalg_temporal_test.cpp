// Tests for the temporal-difference operator and its adjoint.
#include "linalg/temporal.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/ops.hpp"

namespace mcs {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& x : m.data()) {
        x = rng.uniform(-3.0, 3.0);
    }
    return m;
}

TEST(Temporal, DiffKnownValues) {
    const Matrix x{{1, 3, 6}, {2, 2, 5}};
    const Matrix d = temporal_diff(x);
    EXPECT_DOUBLE_EQ(d(0, 0), 0.0);  // first column unconstrained
    EXPECT_DOUBLE_EQ(d(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(d(0, 2), 3.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
    EXPECT_DOUBLE_EQ(d(1, 2), 3.0);
}

TEST(Temporal, DiffOfConstantRowsIsZero) {
    const Matrix x(3, 5, 7.0);
    EXPECT_TRUE(approx_equal(temporal_diff(x), Matrix(3, 5), 0.0));
}

TEST(Temporal, MatrixFreeMatchesDenseOperator) {
    Rng rng(10);
    const Matrix x = random_matrix(4, 7, rng);
    const Matrix dense = multiply(x, temporal_operator_dense(7));
    EXPECT_TRUE(approx_equal(temporal_diff(x), dense, 1e-12));
}

TEST(Temporal, AdjointMatchesDenseTranspose) {
    Rng rng(11);
    const Matrix e = random_matrix(4, 7, rng);
    const Matrix dense = multiply(e, transpose(temporal_operator_dense(7)));
    EXPECT_TRUE(approx_equal(temporal_diff_adjoint(e), dense, 1e-12));
}

TEST(Temporal, AdjointIdentityHolds) {
    // ⟨Δ(X), E⟩ == ⟨X, Δᵀ(E)⟩ for random X, E.
    Rng rng(12);
    for (int trial = 0; trial < 10; ++trial) {
        const Matrix x = random_matrix(5, 9, rng);
        const Matrix e = random_matrix(5, 9, rng);
        EXPECT_NEAR(frobenius_dot(temporal_diff(x), e),
                    frobenius_dot(x, temporal_diff_adjoint(e)), 1e-10);
    }
}

TEST(Temporal, SingleColumnEdgeCase) {
    const Matrix x{{5.0}, {7.0}};
    EXPECT_TRUE(approx_equal(temporal_diff(x), Matrix(2, 1), 0.0));
    const Matrix e{{2.0}, {3.0}};
    EXPECT_TRUE(approx_equal(temporal_diff_adjoint(e), Matrix(2, 1), 0.0));
}

TEST(Temporal, AverageVelocityEquation11) {
    const Matrix v{{2, 4, 6}, {1, 1, 3}};
    const Matrix avg = average_velocity(v);
    EXPECT_DOUBLE_EQ(avg(0, 0), 2.0);  // column 0: instantaneous
    EXPECT_DOUBLE_EQ(avg(0, 1), 3.0);  // (2+4)/2
    EXPECT_DOUBLE_EQ(avg(0, 2), 5.0);  // (4+6)/2
    EXPECT_DOUBLE_EQ(avg(1, 2), 2.0);  // (1+3)/2
}

TEST(Temporal, AverageVelocityOfConstantIsConstant) {
    const Matrix v(3, 6, 4.2);
    EXPECT_TRUE(approx_equal(average_velocity(v), v, 1e-15));
}

TEST(Temporal, DenseOperatorStructure) {
    const Matrix op = temporal_operator_dense(4);
    // Column 0 zero; diagonal 1 elsewhere; superdiagonal -1.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(op(i, 0), 0.0);
    }
    EXPECT_DOUBLE_EQ(op(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(op(0, 1), -1.0);
    EXPECT_DOUBLE_EQ(op(2, 3), -1.0);
    EXPECT_DOUBLE_EQ(op(3, 3), 1.0);
}

}  // namespace
}  // namespace mcs
