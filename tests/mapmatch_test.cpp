// Tests for the map-matching extension (geometry + HMM matcher).
#include "mapmatch/map_matcher.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mapmatch/geometry.hpp"
#include "trace/router.hpp"

namespace mcs {
namespace {

RoadNetworkConfig grid_config() {
    RoadNetworkConfig config;
    config.width_m = 10000.0;
    config.height_m = 10000.0;
    config.block_m = 1000.0;
    return config;
}

TEST(Geometry, ProjectsOntoSegmentInterior) {
    const SegmentProjection p = project_onto_segment(
        {5.0, 3.0}, {0.0, 0.0}, {10.0, 0.0});
    EXPECT_DOUBLE_EQ(p.point.x_m, 5.0);
    EXPECT_DOUBLE_EQ(p.point.y_m, 0.0);
    EXPECT_DOUBLE_EQ(p.distance_m, 3.0);
    EXPECT_DOUBLE_EQ(p.fraction, 0.5);
}

TEST(Geometry, ClampsToEndpoints) {
    const SegmentProjection before = project_onto_segment(
        {-4.0, 3.0}, {0.0, 0.0}, {10.0, 0.0});
    EXPECT_DOUBLE_EQ(before.fraction, 0.0);
    EXPECT_DOUBLE_EQ(before.distance_m, 5.0);
    const SegmentProjection after = project_onto_segment(
        {14.0, 3.0}, {0.0, 0.0}, {10.0, 0.0});
    EXPECT_DOUBLE_EQ(after.fraction, 1.0);
    EXPECT_DOUBLE_EQ(after.distance_m, 5.0);
}

TEST(Geometry, DegenerateSegment) {
    const SegmentProjection p = project_onto_segment(
        {3.0, 4.0}, {0.0, 0.0}, {0.0, 0.0});
    EXPECT_DOUBLE_EQ(p.distance_m, 5.0);
    EXPECT_DOUBLE_EQ(p.fraction, 0.0);
}

TEST(MapMatch, PointOnRoadStaysPut) {
    const RoadNetwork network(grid_config());
    // A point exactly on the horizontal road y = 2000.
    const std::vector<LocalPoint> trajectory{{3500.0, 2000.0}};
    const auto matched = map_match(network, trajectory);
    ASSERT_EQ(matched.size(), 1u);
    EXPECT_NEAR(matched[0].position.x_m, 3500.0, 1e-9);
    EXPECT_NEAR(matched[0].position.y_m, 2000.0, 1e-9);
    EXPECT_NEAR(matched[0].snap_distance_m, 0.0, 1e-9);
}

TEST(MapMatch, OffRoadPointSnapsToNearestRoad) {
    const RoadNetwork network(grid_config());
    // 120 m north of the y = 2000 road, mid-block (x = 3500): the nearest
    // road position is straight down.
    const std::vector<LocalPoint> trajectory{{3500.0, 2120.0}};
    const auto matched = map_match(network, trajectory);
    EXPECT_NEAR(matched[0].position.x_m, 3500.0, 1e-6);
    EXPECT_NEAR(matched[0].position.y_m, 2000.0, 1e-6);
    EXPECT_NEAR(matched[0].snap_distance_m, 120.0, 1e-6);
}

TEST(MapMatch, NoisyStraightDriveRecovered) {
    // A vehicle driving along y = 3000 with ~60 m GPS noise: the matched
    // path must hug that road. A noised point passing right next to a
    // crossing road may legitimately snap onto the crossing (both are
    // metres away), so the assertion is on distance to the true position
    // plus a large on-road majority, not on perfection.
    const RoadNetwork network(grid_config());
    Rng rng(1);
    std::vector<LocalPoint> trajectory;
    std::vector<LocalPoint> truth;
    for (int k = 0; k < 20; ++k) {
        truth.push_back({1150.0 + 300.0 * k, 3000.0});
        trajectory.push_back({truth.back().x_m + rng.normal(0.0, 60.0),
                              3000.0 + rng.normal(0.0, 60.0)});
    }
    MapMatchConfig config;
    config.emission_sigma_m = 100.0;
    const auto matched = map_match(network, trajectory, config);
    std::size_t on_road = 0;
    for (std::size_t k = 0; k < matched.size(); ++k) {
        if (std::abs(matched[k].position.y_m - 3000.0) < 1.0) {
            ++on_road;
        }
        EXPECT_LT(Projection::distance_m(matched[k].position, truth[k]),
                  250.0);
    }
    EXPECT_GE(on_road, 18u);
}

TEST(MapMatch, TurnFollowsBothLegs) {
    // Drive east along y = 2000, then north along x = 6000.
    const RoadNetwork network(grid_config());
    std::vector<LocalPoint> trajectory;
    for (int k = 0; k <= 10; ++k) {
        trajectory.push_back({1000.0 + 500.0 * k, 2000.0});
    }
    for (int k = 1; k <= 8; ++k) {
        trajectory.push_back({6000.0, 2000.0 + 500.0 * k});
    }
    const auto matched = map_match(network, trajectory);
    EXPECT_NEAR(matched[3].position.y_m, 2000.0, 1e-6);
    EXPECT_NEAR(matched.back().position.x_m, 6000.0, 1e-6);
    EXPECT_NEAR(matched.back().position.y_m, 6000.0, 1e-6);
}

TEST(MapMatch, LargeOutlierDoesNotDragItsNeighbours) {
    const RoadNetwork network(grid_config());
    std::vector<LocalPoint> trajectory;
    for (int k = 0; k < 10; ++k) {
        trajectory.push_back({1000.0 + 400.0 * k, 5000.0});
    }
    trajectory[5] = {2600.0, 8200.0};  // 3 km off-route spike
    const auto matched = map_match(network, trajectory);
    // Neighbours of the spike stay on the y = 5000 road.
    EXPECT_NEAR(matched[4].position.y_m, 5000.0, 1.0);
    EXPECT_NEAR(matched[6].position.y_m, 5000.0, 1.0);
}

TEST(MapMatch, FleetWrapperShapes) {
    const RoadNetwork network(grid_config());
    Matrix x(3, 5, 2500.0);  // mid-block: nearest road is y = 3000
    Matrix y(3, 5, 3050.0);  // 50 m off the y = 3000 road
    const MatchedMatrices matched = map_match_fleet(network, x, y);
    EXPECT_EQ(matched.x.rows(), 3u);
    EXPECT_EQ(matched.y.cols(), 5u);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            EXPECT_NEAR(matched.y(i, j), 3000.0, 1e-6);
        }
    }
}

TEST(MapMatch, Validation) {
    const RoadNetwork network(grid_config());
    EXPECT_THROW(map_match(network, {}), Error);
    MapMatchConfig config;
    config.emission_sigma_m = 0.0;
    EXPECT_THROW(map_match(network, {{0.0, 0.0}}, config), Error);
    config = MapMatchConfig{};
    config.max_candidates = 0;
    EXPECT_THROW(map_match(network, {{0.0, 0.0}}, config), Error);
}

// Property: a trajectory that already lies on roads is a fixed point of
// the matcher (zero snap distance everywhere).
class OnRoadProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnRoadProperty, OnRoadTrajectoriesAreFixedPoints) {
    // A *physically consecutive* drive along one road: every sample lies
    // on the road and consecutive hops are axis-aligned, so the on-road
    // candidates dominate both the emission (zero snap) and transition
    // (network distance == hop distance) terms — the matcher must leave
    // the trajectory untouched. (Teleporting or diagonal trajectories do
    // NOT have this property: the HMM legitimately trades snap distance
    // for route consistency there.)
    const RoadNetwork network(grid_config());
    Rng rng(GetParam());
    const double row_y =
        1000.0 * static_cast<double>(rng.uniform_int(1, 9));
    std::vector<LocalPoint> trajectory;
    double x = rng.uniform(200.0, 1500.0);
    for (int step = 0; step < 14 && x < 9800.0; ++step) {
        trajectory.push_back({x, row_y});
        x += rng.uniform(100.0, 400.0);
    }
    const auto matched = map_match(network, trajectory);
    for (std::size_t k = 0; k < matched.size(); ++k) {
        EXPECT_NEAR(matched[k].snap_distance_m, 0.0, 1e-6)
            << "point " << k;
        EXPECT_NEAR(matched[k].position.x_m, trajectory[k].x_m, 1e-6);
        EXPECT_NEAR(matched[k].position.y_m, trajectory[k].y_m, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnRoadProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mcs
