// Tests for the evaluation metrics (precision/recall, Eq. 29 MAE, CDFs).
#include "metrics/confusion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "metrics/cdf.hpp"
#include "metrics/reconstruction_error.hpp"

namespace mcs {
namespace {

TEST(Confusion, CountsKnownCase) {
    const Matrix detection{{1, 1, 0, 0}};
    const Matrix fault{{1, 0, 1, 0}};
    const Matrix existence{{1, 1, 1, 1}};
    const ConfusionCounts c = evaluate_detection(detection, fault, existence);
    EXPECT_EQ(c.true_positive, 1u);
    EXPECT_EQ(c.false_positive, 1u);
    EXPECT_EQ(c.false_negative, 1u);
    EXPECT_EQ(c.true_negative, 1u);
    EXPECT_DOUBLE_EQ(c.precision(), 0.5);
    EXPECT_DOUBLE_EQ(c.recall(), 0.5);
    EXPECT_DOUBLE_EQ(c.f1(), 0.5);
    EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.5);
}

TEST(Confusion, MissingCellsExcluded) {
    const Matrix detection{{1, 1}};
    const Matrix fault{{0, 1}};
    const Matrix existence{{0, 1}};  // first cell missing
    const ConfusionCounts c = evaluate_detection(detection, fault, existence);
    EXPECT_EQ(c.total(), 1u);
    EXPECT_EQ(c.true_positive, 1u);
    EXPECT_EQ(c.false_positive, 0u);
}

TEST(Confusion, DegenerateDefinitions) {
    ConfusionCounts none;
    EXPECT_DOUBLE_EQ(none.precision(), 1.0);  // nothing flagged
    EXPECT_DOUBLE_EQ(none.recall(), 1.0);     // nothing faulty
    EXPECT_DOUBLE_EQ(none.f1(), 1.0);
    EXPECT_DOUBLE_EQ(none.false_positive_rate(), 0.0);

    ConfusionCounts all_wrong;
    all_wrong.false_positive = 5;
    EXPECT_DOUBLE_EQ(all_wrong.precision(), 0.0);
    EXPECT_DOUBLE_EQ(all_wrong.f1(), 0.0);
}

TEST(Confusion, ValidatesBinaryInputs) {
    const Matrix half{{0.5}};
    const Matrix bin{{1.0}};
    EXPECT_THROW(evaluate_detection(half, bin, bin), Error);
    EXPECT_THROW(evaluate_detection(bin, half, bin), Error);
    EXPECT_THROW(evaluate_detection(bin, bin, half), Error);
    EXPECT_THROW(evaluate_detection(bin, bin, Matrix(2, 2)), Error);
}

TEST(ReconstructionError, Equation29OnKnownCase) {
    // Two reconstructed cells: one missing (err 3,4 -> 5), one detected
    // (err 6,8 -> 10); MAE = 7.5. The untouched cell contributes nothing.
    const Matrix tx{{0, 0, 0}};
    const Matrix ty{{0, 0, 0}};
    const Matrix ex{{3, 6, 100}};
    const Matrix ey{{4, 8, 100}};
    const Matrix existence{{0, 1, 1}};
    const Matrix detection{{0, 1, 0}};
    EXPECT_DOUBLE_EQ(
        reconstruction_mae(tx, ty, ex, ey, existence, detection), 7.5);
    EXPECT_DOUBLE_EQ(
        reconstruction_rmse(tx, ty, ex, ey, existence, detection),
        std::sqrt((25.0 + 100.0) / 2.0));
}

TEST(ReconstructionError, NoReconstructedCellsIsZero) {
    const Matrix z(2, 2);
    const Matrix ones = Matrix::constant(2, 2, 1.0);
    EXPECT_DOUBLE_EQ(reconstruction_mae(z, z, z, z, ones, z), 0.0);
}

TEST(ReconstructionError, FullMatrixMae) {
    const Matrix tx{{0, 0}};
    const Matrix ty{{0, 0}};
    const Matrix ex{{3, 0}};
    const Matrix ey{{4, 0}};
    EXPECT_DOUBLE_EQ(full_matrix_mae(tx, ty, ex, ey), 2.5);
}

TEST(ReconstructionError, ShapeChecked) {
    const Matrix a(2, 2);
    const Matrix b(2, 3);
    EXPECT_THROW(reconstruction_mae(a, a, a, a, a, b), Error);
    EXPECT_THROW(full_matrix_mae(a, a, b, a), Error);
}

TEST(SampledCdf, QuartilesOfUniformSample) {
    std::vector<double> values;
    for (int i = 1; i <= 100; ++i) {
        values.push_back(static_cast<double>(i));
    }
    const SampledCdf cdf = sample_cdf(values, 4);
    ASSERT_EQ(cdf.probability.size(), 4u);
    EXPECT_DOUBLE_EQ(cdf.probability[0], 0.25);
    EXPECT_DOUBLE_EQ(cdf.value[0], 25.0);
    EXPECT_DOUBLE_EQ(cdf.value[3], 100.0);
}

TEST(SampledCdf, MonotoneValues) {
    std::vector<double> values{5, 1, 9, 3, 7, 2, 8};
    const SampledCdf cdf = sample_cdf(values, 10);
    for (std::size_t i = 1; i < cdf.value.size(); ++i) {
        EXPECT_GE(cdf.value[i], cdf.value[i - 1]);
    }
}

TEST(SampledCdf, Validation) {
    EXPECT_THROW(sample_cdf(std::vector<double>{}, 4), Error);
    EXPECT_THROW(sample_cdf(std::vector<double>{1.0}, 0), Error);
}

}  // namespace
}  // namespace mcs
