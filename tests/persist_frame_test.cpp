// Unit tests for the checkpoint journal's binary substrate (DESIGN.md
// §12): CRC-32 against known vectors, the byte codec's bounds discipline,
// and frame scanning's two failure classes — corrupt frames (skipped, the
// scan continues) and torn tails (the scan stops). Every corruption here
// is injected by hand at a chosen byte, so each classification rule is
// pinned to the exact damage that triggers it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/failure.hpp"
#include "common/json.hpp"
#include "persist/checkpoint.hpp"
#include "persist/frame_io.hpp"

namespace mcs {
namespace {

std::uint32_t crc_of(const std::string& s) {
    return crc32(s.data(), s.size());
}

class TempDir {
public:
    TempDir() {
        dir_ = std::filesystem::temp_directory_path() /
               ("mcs_persist_test_" +
                std::to_string(
                    reinterpret_cast<std::uintptr_t>(this)));
        std::filesystem::create_directories(dir_);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }

private:
    std::filesystem::path dir_;
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

void flip_bit(const std::string& path, std::size_t offset) {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x10);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
}

void truncate_to(const std::string& path, std::size_t size) {
    std::filesystem::resize_file(path, size);
}

// ---- CRC-32 -------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
    // The IEEE 802.3 check value and friends, from the standard tables.
    EXPECT_EQ(crc_of(""), 0x00000000u);
    EXPECT_EQ(crc_of("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc_of("a"), 0xE8B7BE43u);
    EXPECT_EQ(crc_of("abc"), 0x352441C2u);
    EXPECT_EQ(crc_of("The quick brown fox jumps over the lazy dog"),
              0x414FA339u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
    const std::string whole = "123456789";
    const std::uint32_t split =
        crc32(whole.data() + 4, 5, crc32(whole.data(), 4));
    EXPECT_EQ(split, crc_of(whole));
}

TEST(Crc32Test, SingleBitFlipChangesEveryPrefixLength) {
    for (std::size_t len : {1u, 2u, 7u, 64u, 1000u}) {
        std::vector<std::uint8_t> data(len, 0xA5);
        const std::uint32_t clean = crc32(data.data(), data.size());
        for (std::size_t bit : {std::size_t{0}, len * 8 - 1}) {
            std::vector<std::uint8_t> flipped = data;
            flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
            EXPECT_NE(crc32(flipped.data(), flipped.size()), clean)
                << "undetected bit flip at bit " << bit << " of " << len
                << " bytes";
        }
    }
}

// ---- byte codec ---------------------------------------------------------

TEST(ByteCodecTest, RoundTripsEveryType) {
    ByteWriter w;
    w.put_u8(0xFE);
    w.put_u32(0xDEADBEEFu);
    w.put_u64(0x0123456789ABCDEFull);
    w.put_f64(-0.0);
    w.put_f64(1.0 / 3.0);
    w.put_string("shard context φ");
    w.put_string("");

    ByteReader r({w.bytes().data(), w.bytes().size()});
    EXPECT_EQ(r.get_u8(), 0xFE);
    EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
    EXPECT_TRUE(std::signbit(r.get_f64()));  // -0.0 survives bit-exactly
    EXPECT_EQ(r.get_f64(), 1.0 / 3.0);
    EXPECT_EQ(r.get_string(), "shard context φ");
    EXPECT_EQ(r.get_string(), "");
    EXPECT_TRUE(r.at_end());
}

TEST(ByteCodecTest, OverrunThrowsInsteadOfReadingPastEnd) {
    ByteWriter w;
    w.put_u32(7);
    ByteReader r({w.bytes().data(), w.bytes().size()});
    EXPECT_EQ(r.get_u32(), 7u);
    EXPECT_THROW(r.get_u8(), Error);
    // A string whose length prefix lies about the remaining bytes.
    ByteWriter lie;
    lie.put_u32(1000);  // claims 1000 bytes follow; none do
    ByteReader r2({lie.bytes().data(), lie.bytes().size()});
    EXPECT_THROW(r2.get_string(), Error);
}

// ---- frame writer / scanner ---------------------------------------------

TEST(FrameScanTest, MissingFileIsAnEmptyScan) {
    TempDir tmp;
    const FrameScan scan = scan_frames(tmp.path("never_written.bin"));
    EXPECT_TRUE(scan.frames.empty());
    EXPECT_EQ(scan.corrupt_frames, 0u);
    EXPECT_FALSE(scan.torn_tail);
}

TEST(FrameScanTest, RoundTripsFramesInOrder) {
    TempDir tmp;
    const std::string path = tmp.path("journal.bin");
    {
        FrameWriter writer(path, true);
        writer.append(bytes_of("first"));
        writer.append(bytes_of(""));  // empty payload is a legal frame
        writer.append(bytes_of("x")); // one-byte payload
    }
    const FrameScan scan = scan_frames(path);
    ASSERT_EQ(scan.frames.size(), 3u);
    EXPECT_EQ(scan.frames[0], bytes_of("first"));
    EXPECT_EQ(scan.frames[1], bytes_of(""));
    EXPECT_EQ(scan.frames[2], bytes_of("x"));
    EXPECT_EQ(scan.corrupt_frames, 0u);
    EXPECT_FALSE(scan.torn_tail);
}

TEST(FrameScanTest, AppendModeExtendsAnExistingJournal) {
    TempDir tmp;
    const std::string path = tmp.path("journal.bin");
    {
        FrameWriter writer(path, true);
        writer.append(bytes_of("old"));
    }
    {
        FrameWriter writer(path, false);
        writer.append(bytes_of("new"));
    }
    const FrameScan scan = scan_frames(path);
    ASSERT_EQ(scan.frames.size(), 2u);
    EXPECT_EQ(scan.frames[0], bytes_of("old"));
    EXPECT_EQ(scan.frames[1], bytes_of("new"));
}

TEST(FrameScanTest, PayloadBitFlipSkipsOnlyThatFrame) {
    TempDir tmp;
    const std::string path = tmp.path("journal.bin");
    {
        FrameWriter writer(path, true);
        writer.append(bytes_of("aaaaaaa"));
        writer.append(bytes_of("bbbbbbb"));
        writer.append(bytes_of("ccccccc"));
    }
    // Frame layout: 16-byte header + payload. Flip a payload byte of the
    // middle frame: header intact, CRC fails, scan must resynchronise at
    // frame 3.
    const std::size_t frame_bytes = 16 + 7;
    flip_bit(path, frame_bytes + 16 + 3);
    const FrameScan scan = scan_frames(path);
    ASSERT_EQ(scan.frames.size(), 2u);
    EXPECT_EQ(scan.frames[0], bytes_of("aaaaaaa"));
    EXPECT_EQ(scan.frames[1], bytes_of("ccccccc"));
    EXPECT_EQ(scan.corrupt_frames, 1u);
    EXPECT_FALSE(scan.torn_tail);
    ASSERT_EQ(scan.errors.size(), 1u);
    EXPECT_NE(scan.errors[0].find("CRC"), std::string::npos);
}

TEST(FrameScanTest, TruncatedTailIsTornNotCorrupt) {
    TempDir tmp;
    const std::string path = tmp.path("journal.bin");
    {
        FrameWriter writer(path, true);
        writer.append(bytes_of("complete"));
        writer.append(bytes_of("will be cut"));
    }
    const std::size_t first = 16 + 8;
    // Cut mid-way through the second frame's payload: the classic shape
    // of a crash between write() and the next append.
    truncate_to(path, first + 16 + 4);
    const FrameScan scan = scan_frames(path);
    ASSERT_EQ(scan.frames.size(), 1u);
    EXPECT_EQ(scan.frames[0], bytes_of("complete"));
    EXPECT_EQ(scan.corrupt_frames, 0u);
    EXPECT_TRUE(scan.torn_tail);
}

TEST(FrameScanTest, TruncatedHeaderIsTorn) {
    TempDir tmp;
    const std::string path = tmp.path("journal.bin");
    {
        FrameWriter writer(path, true);
        writer.append(bytes_of("complete"));
        writer.append(bytes_of("victim"));
    }
    const std::size_t first = 16 + 8;
    truncate_to(path, first + 7);  // 7 of 16 header bytes
    const FrameScan scan = scan_frames(path);
    ASSERT_EQ(scan.frames.size(), 1u);
    EXPECT_TRUE(scan.torn_tail);
}

TEST(FrameScanTest, BadMagicStopsTheScan) {
    TempDir tmp;
    const std::string path = tmp.path("journal.bin");
    {
        FrameWriter writer(path, true);
        writer.append(bytes_of("good"));
        writer.append(bytes_of("unreachable"));
    }
    // Clobber the second frame's magic word: everything from there on is
    // unframed garbage, even though a complete frame physically follows.
    flip_bit(path, 16 + 4);
    const FrameScan scan = scan_frames(path);
    ASSERT_EQ(scan.frames.size(), 1u);
    EXPECT_EQ(scan.frames[0], bytes_of("good"));
    EXPECT_TRUE(scan.torn_tail);
}

TEST(FrameScanTest, RewriteCompactsToExactlyTheGivenPayloads) {
    TempDir tmp;
    const std::string path = tmp.path("journal.bin");
    {
        FrameWriter writer(path, true);
        writer.append(bytes_of("stale"));
        writer.append(bytes_of("stale2"));
    }
    rewrite_frames(path, {bytes_of("kept")});
    const FrameScan scan = scan_frames(path);
    ASSERT_EQ(scan.frames.size(), 1u);
    EXPECT_EQ(scan.frames[0], bytes_of("kept"));
    // And the compacted journal accepts further appends.
    {
        FrameWriter writer(path, false);
        writer.append(bytes_of("appended"));
    }
    EXPECT_EQ(scan_frames(path).frames.size(), 2u);
}

TEST(FrameScanTest, AtomicWriteFileReplacesContent) {
    TempDir tmp;
    const std::string path = tmp.path("manifest.json");
    atomic_write_file(path, "{\"a\": 1}");
    atomic_write_file(path, "{\"b\": 2}");
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "{\"b\": 2}");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ---- FailureKind / report plumbing for the new taxonomy entry -----------

TEST(CheckpointFailureTest, CheckpointCorruptRoundTripsThroughJson) {
    FailureReport report;
    report.kind = FailureKind::kCheckpointCorrupt;
    report.phase = "journal";
    report.shard = 3;
    report.detail = "frame 2 at offset 4242: payload CRC mismatch";
    const Json encoded = report.to_json();
    EXPECT_EQ(encoded.at("kind").as_string(), "checkpoint_corrupt");
    const FailureReport decoded = FailureReport::from_json(encoded);
    EXPECT_EQ(decoded.kind, FailureKind::kCheckpointCorrupt);
    EXPECT_EQ(decoded.phase, "journal");
    EXPECT_EQ(decoded.shard, 3u);
    EXPECT_EQ(decoded.detail, report.detail);
}

TEST(CheckpointFailureTest, NameMappingIsStable) {
    EXPECT_STREQ(to_string(FailureKind::kCheckpointCorrupt),
                 "checkpoint_corrupt");
    EXPECT_EQ(failure_kind_from_string("checkpoint_corrupt"),
              FailureKind::kCheckpointCorrupt);
}

// ---- ShardCheckpoint record codec ---------------------------------------

ShardCheckpoint sample_record() {
    ShardCheckpoint rec;
    rec.shard_index = 2;
    rec.row_begin = 16;
    rec.row_end = 24;
    rec.seed = 0xFEEDFACECAFEBEEFull;
    rec.iterations = 4;
    rec.converged = true;
    rec.level = 1;
    rec.attempts = 2;
    FailureReport failure;
    failure.kind = FailureKind::kObjectiveDivergence;
    failure.phase = "asd_minimize";
    failure.shard = 2;
    failure.iteration = 7;
    failure.detail = "objective rose";
    rec.failures.push_back(failure);
    rec.detection = Matrix(8, 5);
    rec.detection(1, 2) = 1.0;
    rec.reconstructed_x = Matrix::constant(8, 5, 1.25);
    rec.reconstructed_y = Matrix::constant(8, 5, -2.5);
    rec.history.push_back({1, 10, 3, 0.5, 0.25});
    rec.counters.itscs_iterations = 4;
    rec.counters.checkpoint_commits = 1;
    rec.phases.push_back({"correct", 8, 0.125});
    return rec;
}

TEST(ShardCheckpointTest, EncodeDecodeRoundTrips) {
    const ShardCheckpoint rec = sample_record();
    const std::vector<std::uint8_t> payload = encode_shard_checkpoint(rec);
    const ShardCheckpoint back =
        decode_shard_checkpoint({payload.data(), payload.size()});
    EXPECT_EQ(back.shard_index, rec.shard_index);
    EXPECT_EQ(back.row_begin, rec.row_begin);
    EXPECT_EQ(back.row_end, rec.row_end);
    EXPECT_EQ(back.seed, rec.seed);
    EXPECT_EQ(back.iterations, rec.iterations);
    EXPECT_EQ(back.converged, rec.converged);
    EXPECT_EQ(back.level, rec.level);
    EXPECT_EQ(back.attempts, rec.attempts);
    ASSERT_EQ(back.failures.size(), 1u);
    EXPECT_EQ(back.failures[0].kind, FailureKind::kObjectiveDivergence);
    EXPECT_EQ(back.failures[0].detail, "objective rose");
    EXPECT_EQ(back.detection(1, 2), 1.0);
    EXPECT_EQ(back.reconstructed_x(0, 0), 1.25);
    EXPECT_EQ(back.reconstructed_y(7, 4), -2.5);
    ASSERT_EQ(back.history.size(), 1u);
    EXPECT_EQ(back.history[0].flagged, 10u);
    EXPECT_EQ(back.counters.itscs_iterations, 4u);
    EXPECT_EQ(back.counters.checkpoint_commits, 1u);
    ASSERT_EQ(back.phases.size(), 1u);
    EXPECT_EQ(back.phases[0].name, "correct");
    EXPECT_EQ(back.phases[0].calls, 8u);
}

TEST(ShardCheckpointTest, TruncatedPayloadThrowsNotCrashes) {
    const std::vector<std::uint8_t> payload =
        encode_shard_checkpoint(sample_record());
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{3}, payload.size() / 2,
          payload.size() - 1}) {
        EXPECT_THROW(decode_shard_checkpoint({payload.data(), cut}), Error)
            << "cut at " << cut;
    }
}

TEST(ShardCheckpointTest, TrailingBytesAreRejected) {
    std::vector<std::uint8_t> payload =
        encode_shard_checkpoint(sample_record());
    payload.push_back(0x00);
    EXPECT_THROW(decode_shard_checkpoint({payload.data(), payload.size()}),
                 Error);
}

TEST(ShardCheckpointTest, WrongVersionIsRejected) {
    std::vector<std::uint8_t> payload =
        encode_shard_checkpoint(sample_record());
    payload[0] ^= 0xFF;  // version is the first encoded field
    EXPECT_THROW(decode_shard_checkpoint({payload.data(), payload.size()}),
                 Error);
}

}  // namespace
}  // namespace mcs
