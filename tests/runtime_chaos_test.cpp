// Chaos harness for the guarded fleet path (DESIGN.md §11): every injected
// fault — poisoned inputs, forced divergence, a throwing task, an expired
// deadline — must end in a finite, fleet-shaped result with a structured
// FailureReport naming the shard, phase and degradation level. No fault
// may crash, hang, or silently corrupt a healthy shard.
//
// This binary runs under the `tsan` preset alongside runtime_test: the
// ladder's retry machinery is exactly the code that must stay race-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/failure.hpp"
#include "common/json.hpp"
#include "corruption/chaos.hpp"
#include "corruption/scenario.hpp"
#include "eval/methods.hpp"
#include "runtime/fleet_runner.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

bool all_finite(const Matrix& m) {
    return std::all_of(m.data().begin(), m.data().end(),
                       [](double v) { return std::isfinite(v); });
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
    const auto da = a.data();
    const auto db = b.data();
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::equal(da.begin(), da.end(), db.begin());
}

ItscsInput fleet_input(std::size_t participants, std::size_t slots) {
    const TraceDataset truth = make_small_dataset(9, participants, slots);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.2;
    corruption.fault_ratio = 0.2;
    corruption.seed = 13;
    return to_itscs_input(corrupt(truth, corruption));
}

// Run a 3-shard fleet under the given chaos spec and assert the global
// invariants every chaos scenario must uphold: finite output, correct
// shapes, and a failure report on every non-nominal shard.
FleetResult run_chaos_fleet(const ChaosInjector* chaos,
                            PipelineContext* ctx = nullptr,
                            double deadline_seconds = 0.0) {
    const ItscsInput input = fleet_input(24, 40);
    RuntimeConfig config;
    config.threads = 2;
    config.shard_size = 8;
    config.chaos = chaos;
    config.health.deadline_seconds = deadline_seconds;
    FleetRunner runner(config);
    const FleetResult fleet = runner.run(input, ItscsConfig{}, ctx);

    EXPECT_TRUE(all_finite(fleet.aggregate.detection));
    EXPECT_TRUE(all_finite(fleet.aggregate.reconstructed_x));
    EXPECT_TRUE(all_finite(fleet.aggregate.reconstructed_y));
    EXPECT_EQ(fleet.aggregate.detection.rows(), 24u);
    EXPECT_EQ(fleet.shards.size(), 3u);
    for (const ShardRunReport& report : fleet.shards) {
        if (report.level == DegradationLevel::kNominal) {
            EXPECT_TRUE(report.failures.empty());
            EXPECT_EQ(report.attempts, 1u);
        } else {
            EXPECT_FALSE(report.failures.empty());
            EXPECT_FALSE(report.converged);
            EXPECT_EQ(report.attempts, report.failures.size() + 1);
            for (const FailureReport& failure : report.failures) {
                EXPECT_EQ(failure.shard, report.shard.index);
                EXPECT_NE(failure.kind, FailureKind::kNone);
                EXPECT_FALSE(failure.phase.empty());
            }
        }
    }
    return fleet;
}

// ---- The acceptance scenarios ------------------------------------------

TEST(ChaosFleet, NanVelocityDegradesEveryShardToConservative) {
    ChaosConfig config;
    config.nan_velocity = 1.0;
    config.seed = 71;
    const ChaosInjector chaos(config);
    PipelineContext ctx(1);
    const FleetResult fleet = run_chaos_fleet(&chaos, &ctx);
    for (const ShardRunReport& report : fleet.shards) {
        EXPECT_NE(report.level, DegradationLevel::kNominal);
        ASSERT_FALSE(report.failures.empty());
        EXPECT_EQ(report.failures.front().kind,
                  FailureKind::kNonFiniteInput);
        EXPECT_EQ(report.failures.front().phase, "validate");
    }
    EXPECT_GE(ctx.counters().guard_trips, 3u);
    EXPECT_EQ(ctx.counters().shards_degraded, 3u);
    EXPECT_EQ(ctx.counters().shard_retries, 3u);
}

TEST(ChaosFleet, InfCoordinateIsCaughtAndSanitizedAway) {
    ChaosConfig config;
    config.inf_coordinate = 1.0;
    config.seed = 72;
    const ChaosInjector chaos(config);
    const FleetResult fleet = run_chaos_fleet(&chaos);
    for (const ShardRunReport& report : fleet.shards) {
        EXPECT_NE(report.level, DegradationLevel::kNominal);
        ASSERT_FALSE(report.failures.empty());
        EXPECT_EQ(report.failures.front().kind,
                  FailureKind::kNonFiniteInput);
        // The sanitized retry must succeed: ±Inf only removed a few cells.
        EXPECT_EQ(report.level, DegradationLevel::kConservative);
    }
}

TEST(ChaosFleet, ForcedDivergenceTripsTheObjectiveGuard) {
    ChaosConfig config;
    config.force_divergence = 1.0;
    config.seed = 73;
    const ChaosInjector chaos(config);
    const FleetResult fleet = run_chaos_fleet(&chaos);
    for (const ShardRunReport& report : fleet.shards) {
        EXPECT_NE(report.level, DegradationLevel::kNominal);
        ASSERT_FALSE(report.failures.empty());
        EXPECT_EQ(report.failures.front().kind,
                  FailureKind::kObjectiveDivergence);
        EXPECT_EQ(report.failures.front().phase, "asd_minimize");
        EXPECT_GT(report.failures.front().iteration, 0u);
    }
}

TEST(ChaosFleet, TaskThrowIsContainedPerShard) {
    ChaosConfig config;
    config.task_throw = 1.0;
    config.seed = 74;
    const ChaosInjector chaos(config);
    const FleetResult fleet = run_chaos_fleet(&chaos);
    for (const ShardRunReport& report : fleet.shards) {
        ASSERT_FALSE(report.failures.empty());
        EXPECT_EQ(report.failures.front().kind,
                  FailureKind::kTaskException);
        // The retry runs injector-free, so one rung down suffices.
        EXPECT_EQ(report.level, DegradationLevel::kConservative);
    }
}

TEST(ChaosFleet, DeadlineExpiryLandsOnInterpolation) {
    // A budget no solver iteration can meet: both solver rungs blow it,
    // the solver-free interpolation rung completes.
    const FleetResult fleet = run_chaos_fleet(nullptr, nullptr, 1e-9);
    for (const ShardRunReport& report : fleet.shards) {
        EXPECT_EQ(report.level, DegradationLevel::kInterpolation);
        ASSERT_GE(report.failures.size(), 2u);
        EXPECT_EQ(report.failures[0].kind, FailureKind::kDeadlineExpired);
        EXPECT_EQ(report.failures[1].kind, FailureKind::kDeadlineExpired);
    }
    EXPECT_FALSE(fleet.aggregate.converged);
}

TEST(ChaosFleet, EveryFaultKindAtOnceStillEndsFinite) {
    ChaosConfig config;
    config.nan_velocity = 0.6;
    config.inf_coordinate = 0.6;
    config.duplicate_rows = 0.6;
    config.force_divergence = 0.6;
    config.task_throw = 0.6;
    config.seed = 75;
    const ChaosInjector chaos(config);
    // run_chaos_fleet asserts finiteness + reporting invariants for
    // whatever mix of faults the seed draws.
    run_chaos_fleet(&chaos);
}

TEST(ChaosFleet, LrsdBackendUnderChaosEndsFinite) {
    // The guard layer and degradation ladder are backend-agnostic
    // (DESIGN.md §14): the LRSD backend under a full fault mix must end
    // finite with the same per-shard reporting invariants as ASD.
    ChaosConfig config;
    config.nan_velocity = 0.6;
    config.inf_coordinate = 0.6;
    config.force_divergence = 0.6;
    config.task_throw = 0.6;
    config.seed = 77;
    const ChaosInjector chaos(config);

    const ItscsInput input = fleet_input(24, 40);
    RuntimeConfig runtime;
    runtime.threads = 2;
    runtime.shard_size = 8;
    runtime.chaos = &chaos;
    runtime.solver = SolverKind::kLrsd;
    FleetRunner runner(runtime);
    PipelineContext ctx(1);
    const FleetResult fleet = runner.run(input, ItscsConfig{}, &ctx);

    EXPECT_TRUE(all_finite(fleet.aggregate.detection));
    EXPECT_TRUE(all_finite(fleet.aggregate.reconstructed_x));
    EXPECT_TRUE(all_finite(fleet.aggregate.reconstructed_y));
    EXPECT_EQ(fleet.shards.size(), 3u);
    EXPECT_EQ(ctx.solver_backend(), SolverKind::kLrsd);
    for (const ShardRunReport& report : fleet.shards) {
        if (report.level != DegradationLevel::kNominal) {
            EXPECT_FALSE(report.failures.empty());
            EXPECT_EQ(report.attempts, report.failures.size() + 1);
        }
    }
}

// ---- Guard overhead must be observation-only ---------------------------

TEST(ChaosFleet, GuardsOnZeroFaultIsBitIdenticalToGuardsOff) {
    const ItscsInput input = fleet_input(24, 40);
    RuntimeConfig guarded;
    guarded.threads = 2;
    guarded.shard_size = 8;
    RuntimeConfig unguarded = guarded;
    unguarded.guard = false;

    FleetRunner a(guarded);
    FleetRunner b(unguarded);
    const FleetResult ra = a.run(input, ItscsConfig{});
    const FleetResult rb = b.run(input, ItscsConfig{});

    EXPECT_TRUE(bitwise_equal(ra.aggregate.detection,
                              rb.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(ra.aggregate.reconstructed_x,
                              rb.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(ra.aggregate.reconstructed_y,
                              rb.aggregate.reconstructed_y));
    for (const ShardRunReport& report : ra.shards) {
        EXPECT_EQ(report.level, DegradationLevel::kNominal);
        EXPECT_EQ(report.attempts, 1u);
        EXPECT_TRUE(report.failures.empty());
    }
}

TEST(ChaosFleet, ChaosRunIsDeterministicAcrossThreadCounts) {
    ChaosConfig config;
    config.nan_velocity = 0.5;
    config.force_divergence = 0.5;
    config.seed = 76;
    const ChaosInjector chaos(config);
    const ItscsInput input = fleet_input(24, 40);

    RuntimeConfig one;
    one.threads = 1;
    one.shard_size = 8;
    one.chaos = &chaos;
    RuntimeConfig four = one;
    four.threads = 4;

    FleetRunner a(one);
    FleetRunner b(four);
    const FleetResult ra = a.run(input, ItscsConfig{});
    const FleetResult rb = b.run(input, ItscsConfig{});
    EXPECT_TRUE(bitwise_equal(ra.aggregate.detection,
                              rb.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(ra.aggregate.reconstructed_x,
                              rb.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(ra.aggregate.reconstructed_y,
                              rb.aggregate.reconstructed_y));
    ASSERT_EQ(ra.shards.size(), rb.shards.size());
    for (std::size_t s = 0; s < ra.shards.size(); ++s) {
        EXPECT_EQ(ra.shards[s].level, rb.shards[s].level);
        EXPECT_EQ(ra.shards[s].attempts, rb.shards[s].attempts);
        EXPECT_EQ(ra.shards[s].failures.size(),
                  rb.shards[s].failures.size());
    }
}

// ---- ChaosConfig spec grammar ------------------------------------------

TEST(ChaosConfig, ParsesTheFullGrammar) {
    const ChaosConfig config =
        ChaosConfig::parse("nan=0.5,inf=0.25,dup=0.1,diverge=1,throw=0.75,"
                           "cells=0.02,seed=99");
    EXPECT_DOUBLE_EQ(config.nan_velocity, 0.5);
    EXPECT_DOUBLE_EQ(config.inf_coordinate, 0.25);
    EXPECT_DOUBLE_EQ(config.duplicate_rows, 0.1);
    EXPECT_DOUBLE_EQ(config.force_divergence, 1.0);
    EXPECT_DOUBLE_EQ(config.task_throw, 0.75);
    EXPECT_DOUBLE_EQ(config.cell_fraction, 0.02);
    EXPECT_EQ(config.seed, 99u);
    EXPECT_FALSE(config.idle());
    EXPECT_TRUE(ChaosConfig::parse("").idle());
}

TEST(ChaosConfig, RejectsMalformedSpecs) {
    EXPECT_THROW(ChaosConfig::parse("bogus=1"), Error);
    EXPECT_THROW(ChaosConfig::parse("nan"), Error);
    EXPECT_THROW(ChaosConfig::parse("nan=abc"), Error);
    EXPECT_THROW(ChaosConfig::parse("nan=1.5"), Error);
    EXPECT_THROW(ChaosConfig::parse("seed=-1x"), Error);
}

TEST(ChaosConfig, UnknownKeySuggestsTheNearestOne) {
    try {
        ChaosConfig::parse("nang=0.5");
        FAIL() << "expected mcs::Error";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("did you mean 'nan'"),
                  std::string::npos)
            << error.what();
    }
    try {
        ChaosConfig::parse("slotlos=3");
        FAIL() << "expected mcs::Error";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("did you mean 'slotloss'"),
                  std::string::npos)
            << error.what();
    }
}

TEST(ChaosInjector, PlansArePureFunctionsOfSeedAndShard) {
    ChaosConfig config;
    config.nan_velocity = 0.5;
    config.task_throw = 0.5;
    config.seed = 42;
    const ChaosInjector a(config);
    const ChaosInjector b(config);
    bool any = false;
    for (std::size_t s = 0; s < 32; ++s) {
        const ShardChaosPlan pa = a.plan(s);
        const ShardChaosPlan pb = b.plan(s);
        EXPECT_EQ(pa.poison_nan, pb.poison_nan);
        EXPECT_EQ(pa.throw_task, pb.throw_task);
        EXPECT_EQ(pa.seed, pb.seed);
        any = any || pa.any();
    }
    EXPECT_TRUE(any);  // p=0.5 over 32 shards: some fault must fire
}

// ---- FailureReport JSON round-trip -------------------------------------

TEST(FailureReport, RoundTripsThroughJson) {
    FailureReport report;
    report.kind = FailureKind::kRankCollapse;
    report.phase = "asd_minimize";
    report.shard = 7;
    report.iteration = 42;
    report.detail = "factor Gram trace 0.000000";
    const Json encoded = Json::parse(report.to_json().dump());
    const FailureReport decoded = FailureReport::from_json(encoded);
    EXPECT_EQ(decoded.kind, report.kind);
    EXPECT_EQ(decoded.phase, report.phase);
    EXPECT_EQ(decoded.shard, report.shard);
    EXPECT_EQ(decoded.iteration, report.iteration);
    EXPECT_EQ(decoded.detail, report.detail);
}

TEST(FailureReport, NamesRoundTripForEveryKindAndLevel) {
    for (const FailureKind kind :
         {FailureKind::kNone, FailureKind::kNonFiniteInput,
          FailureKind::kNonFiniteValue, FailureKind::kObjectiveDivergence,
          FailureKind::kRankCollapse, FailureKind::kDeadlineExpired,
          FailureKind::kTaskException}) {
        EXPECT_EQ(failure_kind_from_string(to_string(kind)), kind);
    }
    for (const DegradationLevel level :
         {DegradationLevel::kNominal, DegradationLevel::kConservative,
          DegradationLevel::kInterpolation,
          DegradationLevel::kDetectOnly}) {
        EXPECT_EQ(degradation_level_from_string(to_string(level)), level);
    }
    EXPECT_THROW(failure_kind_from_string("nope"), Error);
    EXPECT_THROW(degradation_level_from_string("nope"), Error);
}

}  // namespace
}  // namespace mcs
