// Checkpoint/resume semantics of the fleet runner (DESIGN.md §12).
//
// The contract under test: a run that checkpoints, dies, and resumes
// produces output bit-identical to an uninterrupted run — at any thread
// count — and any damage to the journal (truncation, bit rot, a record
// from a different run) costs a re-run of the affected shards, never
// correctness. In-process we simulate death by *withholding* journal
// frames (truncating the file between runs) rather than aborting; the
// real process-abort path (`--chaos=crash=k`) is exercised end-to-end by
// tools/test_crash_resume.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/context.hpp"
#include "common/json.hpp"
#include "corruption/scenario.hpp"
#include "eval/methods.hpp"
#include "persist/checkpoint.hpp"
#include "persist/frame_io.hpp"
#include "runtime/fleet_runner.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

constexpr std::size_t kParticipants = 28;
constexpr std::size_t kSlots = 40;
constexpr std::size_t kShardSize = 4;  // 7 shards

bool bitwise_equal(const Matrix& a, const Matrix& b) {
    const auto da = a.data();
    const auto db = b.data();
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::equal(da.begin(), da.end(), db.begin());
}

ItscsInput fleet_input() {
    const TraceDataset truth = make_small_dataset(21, kParticipants, kSlots);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.2;
    corruption.fault_ratio = 0.2;
    corruption.seed = 17;
    return to_itscs_input(corrupt(truth, corruption));
}

RuntimeConfig runtime_config(std::size_t threads,
                             const std::string& checkpoint_dir = "",
                             bool resume = false) {
    RuntimeConfig config;
    config.threads = threads;
    config.shard_size = kShardSize;
    config.checkpoint_dir = checkpoint_dir;
    config.resume = resume;
    return config;
}

class CheckpointDir {
public:
    CheckpointDir() {
        dir_ = std::filesystem::temp_directory_path() /
               ("mcs_ckpt_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    }
    ~CheckpointDir() {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    std::string path() const { return dir_.string(); }
    std::string journal() const { return (dir_ / "journal.bin").string(); }
    std::string manifest() const {
        return (dir_ / "manifest.json").string();
    }

private:
    std::filesystem::path dir_;
};

// Leave only the first `keep` frames of the journal — the on-disk state
// of a process that died right after its keep-th commit.
void drop_frames_after(const std::string& journal_path, std::size_t keep) {
    FrameScan scan = scan_frames(journal_path);
    ASSERT_GE(scan.frames.size(), keep);
    scan.frames.resize(keep);
    rewrite_frames(journal_path, scan.frames);
}

void flip_byte(const std::string& path, std::size_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x04);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
}

TEST(RuntimeCheckpointTest, CheckpointedRunMatchesPlainRunBitwise) {
    const ItscsInput input = fleet_input();
    FleetRunner plain(runtime_config(2));
    const FleetResult reference = plain.run(input, ItscsConfig{});

    CheckpointDir dir;
    FleetRunner checkpointed(runtime_config(2, dir.path()));
    const FleetResult fleet = checkpointed.run(input, ItscsConfig{});

    EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                              reference.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                              reference.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_y,
                              reference.aggregate.reconstructed_y));
    EXPECT_TRUE(fleet.checkpoint.enabled);
    EXPECT_EQ(fleet.checkpoint.shards_run, fleet.shards.size());
    EXPECT_EQ(fleet.checkpoint.shards_loaded, 0u);

    // Every shard left one CRC-valid frame in the journal.
    const FrameScan scan = scan_frames(dir.journal());
    EXPECT_EQ(scan.frames.size(), fleet.shards.size());
    EXPECT_EQ(scan.corrupt_frames, 0u);
    EXPECT_TRUE(std::filesystem::exists(dir.manifest()));
}

TEST(RuntimeCheckpointTest, ResumeAfterPartialJournalIsBitIdentical) {
    const ItscsInput input = fleet_input();
    FleetRunner plain(runtime_config(1));
    const FleetResult reference = plain.run(input, ItscsConfig{});

    // The interrupted run ran at 2 threads; the resume sweeps 1, 2 and 7
    // threads — the restored+recomputed stitching must be thread-blind.
    for (const std::size_t resume_threads : {1u, 2u, 7u}) {
        CheckpointDir dir;
        {
            FleetRunner first(runtime_config(2, dir.path()));
            first.run(input, ItscsConfig{});
        }
        drop_frames_after(dir.journal(), 3);

        PipelineContext ctx;
        FleetRunner second(
            runtime_config(resume_threads, dir.path(), /*resume=*/true));
        const FleetResult fleet = second.run(input, ItscsConfig{}, &ctx);

        EXPECT_EQ(fleet.checkpoint.shards_loaded, 3u)
            << "threads=" << resume_threads;
        EXPECT_EQ(fleet.checkpoint.shards_run, fleet.shards.size() - 3)
            << "threads=" << resume_threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                                  reference.aggregate.detection));
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                                  reference.aggregate.reconstructed_x));
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_y,
                                  reference.aggregate.reconstructed_y));
        // Restored shards carry their journaled diagnostics (seed and row
        // range re-validated against the recomputed plan at load time).
        for (const ShardRunReport& report : fleet.shards) {
            EXPECT_EQ(report.shard.size(), kShardSize);
            EXPECT_NE(report.seed, 0u);
        }
        EXPECT_EQ(ctx.counters().checkpoint_shards_resumed, 3u);
        EXPECT_GT(ctx.counters().checkpoint_commits, 0u);
    }
}

TEST(RuntimeCheckpointTest, ResumeWithFullJournalRunsNothing) {
    const ItscsInput input = fleet_input();
    CheckpointDir dir;
    FleetResult first_result;
    {
        FleetRunner first(runtime_config(2, dir.path()));
        first_result = first.run(input, ItscsConfig{});
    }
    FleetRunner second(runtime_config(2, dir.path(), /*resume=*/true));
    const FleetResult fleet = second.run(input, ItscsConfig{});
    EXPECT_EQ(fleet.checkpoint.shards_loaded, fleet.shards.size());
    EXPECT_EQ(fleet.checkpoint.shards_run, 0u);
    EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                              first_result.aggregate.reconstructed_x));
    EXPECT_EQ(fleet.aggregate.iterations,
              first_result.aggregate.iterations);
    EXPECT_EQ(fleet.aggregate.converged,
              first_result.aggregate.converged);
    // History restored from journaled records, not recomputed.
    ASSERT_EQ(fleet.aggregate.history.size(),
              first_result.aggregate.history.size());
    for (std::size_t k = 0; k < fleet.aggregate.history.size(); ++k) {
        EXPECT_EQ(fleet.aggregate.history[k].flagged,
                  first_result.aggregate.history[k].flagged);
    }
}

TEST(RuntimeCheckpointTest, BitFlippedFrameIsReportedAndReRun) {
    const ItscsInput input = fleet_input();
    FleetRunner plain(runtime_config(1));
    const FleetResult reference = plain.run(input, ItscsConfig{});

    CheckpointDir dir;
    {
        FleetRunner first(runtime_config(2, dir.path()));
        first.run(input, ItscsConfig{});
    }
    // Flip one byte in the middle of the third frame's *payload* (headers
    // delimit frames; damaging one would tear the tail instead): exactly
    // one frame dies, every other frame stays loadable.
    const FrameScan before = scan_frames(dir.journal());
    ASSERT_GE(before.frames.size(), 3u);
    std::size_t offset = 0;
    for (std::size_t k = 0; k < 2; ++k) {
        offset += 16 + before.frames[k].size();
    }
    offset += 16 + before.frames[2].size() / 2;
    flip_byte(dir.journal(), offset);

    PipelineContext ctx;
    FleetRunner second(runtime_config(2, dir.path(), /*resume=*/true));
    const FleetResult fleet = second.run(input, ItscsConfig{}, &ctx);

    EXPECT_EQ(fleet.checkpoint.corrupt_frames, 1u);
    EXPECT_EQ(fleet.checkpoint.shards_run, 1u);
    EXPECT_EQ(fleet.checkpoint.shards_loaded, fleet.shards.size() - 1);
    ASSERT_FALSE(fleet.checkpoint.journal_failures.empty());
    EXPECT_EQ(fleet.checkpoint.journal_failures[0].kind,
              FailureKind::kCheckpointCorrupt);
    EXPECT_EQ(ctx.counters().checkpoint_corrupt_frames, 1u);

    EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                              reference.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                              reference.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_y,
                              reference.aggregate.reconstructed_y));
}

TEST(RuntimeCheckpointTest, TornTailIsRecoveredFrom) {
    const ItscsInput input = fleet_input();
    FleetRunner plain(runtime_config(1));
    const FleetResult reference = plain.run(input, ItscsConfig{});

    CheckpointDir dir;
    {
        FleetRunner first(runtime_config(2, dir.path()));
        first.run(input, ItscsConfig{});
    }
    // Tear the tail mid-frame, like a crash during the final append.
    const std::size_t size = static_cast<std::size_t>(
        std::filesystem::file_size(dir.journal()));
    std::filesystem::resize_file(dir.journal(), size - 11);

    FleetRunner second(runtime_config(2, dir.path(), /*resume=*/true));
    const FleetResult fleet = second.run(input, ItscsConfig{});
    EXPECT_TRUE(fleet.checkpoint.torn_tail);
    EXPECT_EQ(fleet.checkpoint.shards_run, 1u);
    EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                              reference.aggregate.reconstructed_x));
}

TEST(RuntimeCheckpointTest, MismatchedInputRefusesToResume) {
    const ItscsInput input = fleet_input();
    CheckpointDir dir;
    {
        FleetRunner first(runtime_config(2, dir.path()));
        first.run(input, ItscsConfig{});
    }
    // Same shapes, different readings: the input fingerprint must differ.
    ItscsInput other = input;
    other.sx(0, 0) += 1.0;
    FleetRunner second(runtime_config(2, dir.path(), /*resume=*/true));
    EXPECT_THROW(second.run(other, ItscsConfig{}), Error);
}

TEST(RuntimeCheckpointTest, MismatchedSeedRefusesToResume) {
    const ItscsInput input = fleet_input();
    CheckpointDir dir;
    {
        FleetRunner first(runtime_config(2, dir.path()));
        first.run(input, ItscsConfig{});
    }
    RuntimeConfig changed = runtime_config(2, dir.path(), /*resume=*/true);
    changed.seed = 0xBADull;
    FleetRunner second(changed);
    EXPECT_THROW(second.run(input, ItscsConfig{}), Error);
}

TEST(RuntimeCheckpointTest, MismatchedPlanRefusesToResume) {
    const ItscsInput input = fleet_input();
    CheckpointDir dir;
    {
        FleetRunner first(runtime_config(2, dir.path()));
        first.run(input, ItscsConfig{});
    }
    RuntimeConfig changed = runtime_config(2, dir.path(), /*resume=*/true);
    changed.shard_size = kShardSize * 2;  // different decomposition
    FleetRunner second(changed);
    EXPECT_THROW(second.run(input, ItscsConfig{}), Error);
}

TEST(RuntimeCheckpointTest, MismatchedKernelTierRefusesToResume) {
    const ItscsInput input = fleet_input();
    CheckpointDir dir;
    {
        FleetRunner first(runtime_config(2, dir.path()));  // exact tier
        first.run(input, ItscsConfig{});
    }
    // The tier is part of the numerics: silently resuming an exact-tier
    // journal under the fast tier would stitch two roundings into one
    // result. The refusal names the tier, not just a hash.
    RuntimeConfig changed = runtime_config(2, dir.path(), /*resume=*/true);
    changed.kernel_tier = KernelTier::kFast;
    FleetRunner second(changed);
    try {
        second.run(input, ItscsConfig{});
        FAIL() << "expected the tier mismatch to throw";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("kernel tier"),
                  std::string::npos)
            << error.what();
    }
}

TEST(RuntimeCheckpointTest, MismatchedSolverBackendRefusesToResume) {
    const ItscsInput input = fleet_input();
    CheckpointDir dir;
    {
        FleetRunner first(runtime_config(2, dir.path()));  // ASD default
        first.run(input, ItscsConfig{});
    }
    // Shards solved by different backends must never be stitched into one
    // result; the refusal names both backends, not just a hash.
    RuntimeConfig changed = runtime_config(2, dir.path(), /*resume=*/true);
    changed.solver = SolverKind::kLrsd;
    FleetRunner second(changed);
    try {
        second.run(input, ItscsConfig{});
        FAIL() << "expected the solver mismatch to throw";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("solver backend"),
                  std::string::npos)
            << error.what();
    }
}

TEST(RuntimeCheckpointTest, MismatchedDefenseSpecRefusesToResume) {
    // The defence spec shapes the final solve's input (quarantined rows
    // are masked out), so it is folded into the runtime fingerprint:
    // resuming a journal written under a different spec must refuse
    // rather than stitch two quarantine policies into one result.
    const ItscsInput input = fleet_input();
    const DefenseSuite armed{DefenseSpec{}};
    CheckpointDir dir;
    {
        RuntimeConfig config = runtime_config(2, dir.path());
        config.defense = &armed;
        FleetRunner first(config);
        first.run(input, ItscsConfig{});
    }
    const DefenseSuite stricter(DefenseSpec::parse("collusion=2,replay=0.9"));
    RuntimeConfig changed = runtime_config(2, dir.path(), /*resume=*/true);
    changed.defense = &stricter;
    FleetRunner second(changed);
    try {
        second.run(input, ItscsConfig{});
        FAIL() << "expected the defence spec mismatch to throw";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("runtime_fingerprint"),
                  std::string::npos)
            << error.what();
    }

    // The same spec resumes cleanly: the refusal keys on the spec, not on
    // the mere presence of a defence suite.
    RuntimeConfig same = runtime_config(2, dir.path(), /*resume=*/true);
    same.defense = &armed;
    FleetRunner third(same);
    const FleetResult resumed = third.run(input, ItscsConfig{});
    EXPECT_EQ(resumed.checkpoint.shards_loaded, resumed.shards.size());
}

TEST(RuntimeCheckpointTest, LrsdResumeIsBitIdentical) {
    // The checkpoint layer is backend-agnostic: an interrupted LRSD run
    // resumes to the same bits as an uninterrupted one.
    const ItscsInput input = fleet_input();

    RuntimeConfig plain_config = runtime_config(2);
    plain_config.solver = SolverKind::kLrsd;
    FleetRunner plain(plain_config);
    const FleetResult reference = plain.run(input, ItscsConfig{});

    CheckpointDir dir;
    RuntimeConfig ck_config = runtime_config(2, dir.path());
    ck_config.solver = SolverKind::kLrsd;
    {
        FleetRunner first(ck_config);
        first.run(input, ItscsConfig{});
    }
    drop_frames_after(dir.journal(), 3);

    ck_config.resume = true;
    FleetRunner resumed_runner(ck_config);
    PipelineContext ctx;
    const FleetResult resumed =
        resumed_runner.run(input, ItscsConfig{}, &ctx);
    EXPECT_EQ(resumed.checkpoint.shards_loaded, 3u);
    EXPECT_EQ(resumed.checkpoint.shards_run, resumed.shards.size() - 3u);
    EXPECT_EQ(ctx.solver_backend(), SolverKind::kLrsd);
    EXPECT_TRUE(bitwise_equal(resumed.aggregate.detection,
                              reference.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(resumed.aggregate.reconstructed_x,
                              reference.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(resumed.aggregate.reconstructed_y,
                              reference.aggregate.reconstructed_y));
}

TEST(RuntimeCheckpointTest, FastTierResumeIsBitIdentical) {
    const ItscsInput input = fleet_input();

    RuntimeConfig plain_config = runtime_config(2);
    plain_config.kernel_tier = KernelTier::kFast;
    FleetRunner plain(plain_config);
    const FleetResult reference = plain.run(input, ItscsConfig{});

    CheckpointDir dir;
    RuntimeConfig ck_config = runtime_config(2, dir.path());
    ck_config.kernel_tier = KernelTier::kFast;
    {
        FleetRunner first(ck_config);
        first.run(input, ItscsConfig{});
    }
    drop_frames_after(dir.journal(), 3);

    ck_config.resume = true;
    FleetRunner resumed_runner(ck_config);
    const FleetResult resumed = resumed_runner.run(input, ItscsConfig{});
    EXPECT_EQ(resumed.checkpoint.shards_loaded, 3u);
    EXPECT_EQ(resumed.checkpoint.shards_run, resumed.shards.size() - 3u);
    EXPECT_TRUE(bitwise_equal(resumed.aggregate.detection,
                              reference.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(resumed.aggregate.reconstructed_x,
                              reference.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(resumed.aggregate.reconstructed_y,
                              reference.aggregate.reconstructed_y));
}

TEST(RuntimeCheckpointTest, FreshRunWithoutResumeResetsTheJournal) {
    const ItscsInput input = fleet_input();
    CheckpointDir dir;
    {
        FleetRunner first(runtime_config(2, dir.path()));
        first.run(input, ItscsConfig{});
    }
    // Re-running *without* --resume starts over: the journal is reset and
    // every shard runs again.
    FleetRunner second(runtime_config(2, dir.path()));
    const FleetResult fleet = second.run(input, ItscsConfig{});
    EXPECT_EQ(fleet.checkpoint.shards_loaded, 0u);
    EXPECT_EQ(fleet.checkpoint.shards_run, fleet.shards.size());
}

TEST(RuntimeCheckpointTest, ResumeWithNoPriorStateIsAFreshRun) {
    const ItscsInput input = fleet_input();
    CheckpointDir dir;
    FleetRunner runner(runtime_config(2, dir.path(), /*resume=*/true));
    const FleetResult fleet = runner.run(input, ItscsConfig{});
    EXPECT_EQ(fleet.checkpoint.shards_loaded, 0u);
    EXPECT_EQ(fleet.checkpoint.shards_run, fleet.shards.size());
    // And the journal it left is immediately resumable.
    FleetRunner again(runtime_config(2, dir.path(), /*resume=*/true));
    const FleetResult resumed = again.run(input, ItscsConfig{});
    EXPECT_EQ(resumed.checkpoint.shards_loaded, resumed.shards.size());
}

}  // namespace
}  // namespace mcs
