// The out-of-core data plane (DESIGN.md §18): slab store round trips,
// streamed-vs-in-core bit-identity under the work-stealing scheduler,
// crash recovery through a torn slab file, the geographic by_cell
// planner's determinism and balance contract, and the float32 storage
// tier's verification gate.
//
// The central contract: routing a fleet through the mmap slab store — at
// any thread count, stolen or not — produces bytes identical to the
// in-core run of the same plan, and any damage to the slab file costs a
// re-run of the affected shards, never correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/context.hpp"
#include "corruption/scenario.hpp"
#include "eval/methods.hpp"
#include "persist/slab_store.hpp"
#include "runtime/fleet_runner.hpp"
#include "runtime/shard_plan.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

constexpr std::size_t kParticipants = 28;
constexpr std::size_t kSlots = 40;
constexpr std::size_t kShardSize = 4;  // 7 shards

bool bitwise_equal(const Matrix& a, const Matrix& b) {
    const auto da = a.data();
    const auto db = b.data();
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::equal(da.begin(), da.end(), db.begin());
}

ItscsInput fleet_input() {
    const TraceDataset truth = make_small_dataset(21, kParticipants, kSlots);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.2;
    corruption.fault_ratio = 0.2;
    corruption.seed = 17;
    return to_itscs_input(corrupt(truth, corruption));
}

RuntimeConfig runtime_config(std::size_t threads) {
    RuntimeConfig config;
    config.threads = threads;
    config.shard_size = kShardSize;
    return config;
}

class TempDir {
public:
    explicit TempDir(const char* tag) {
        dir_ = std::filesystem::temp_directory_path() /
               (std::string("mcs_scale_test_") + tag + "_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)));
        std::filesystem::remove_all(dir_);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    std::string path() const { return dir_.string(); }

private:
    std::filesystem::path dir_;
};

// Pull shard s's three output matrices out of the store.
struct ShardOutputs {
    Matrix detection;
    Matrix rx;
    Matrix ry;
};

ShardOutputs read_shard_outputs(const SlabStore& store, std::size_t s) {
    const std::size_t rows = store.shards()[s].size();
    const std::size_t slots = store.geometry().slots;
    ShardOutputs out{Matrix(rows, slots), Matrix(rows, slots),
                     Matrix(rows, slots)};
    double* mats[kSlabOutputMatrices] = {out.detection.data().data(),
                                         out.rx.data().data(),
                                         out.ry.data().data()};
    store.read_outputs(s, mats);
    return out;
}

// Compare a streamed run's output slabs against an in-core aggregate,
// row by member row.
bool streamed_matches_aggregate(const SlabStore& store,
                                const ItscsResult& aggregate) {
    const std::size_t slots = store.geometry().slots;
    for (std::size_t s = 0; s < store.shards().size(); ++s) {
        const ShardOutputs out = read_shard_outputs(store, s);
        const SlabShardInfo& info = store.shards()[s];
        for (std::size_t k = 0; k < info.size(); ++k) {
            const std::size_t row =
                info.rows.empty()
                    ? static_cast<std::size_t>(info.begin) + k
                    : info.rows[k];
            for (std::size_t j = 0; j < slots; ++j) {
                if (aggregate.detection(row, j) != out.detection(k, j) ||
                    aggregate.reconstructed_x(row, j) != out.rx(k, j) ||
                    aggregate.reconstructed_y(row, j) != out.ry(k, j)) {
                    return false;
                }
            }
        }
    }
    return true;
}

// ---- slab store round trips ----------------------------------------------

TEST(SlabStoreTest, F64RoundTripIsExactAndF32RoundsOnce) {
    const ItscsInput input = fleet_input();
    for (const StorageTier tier : {StorageTier::kF64, StorageTier::kF32}) {
        TempDir dir(tier == StorageTier::kF64 ? "rt64" : "rt32");
        RuntimeConfig config = runtime_config(1);
        config.storage = tier;
        FleetRunner runner(config);
        auto store = runner.create_slab_store(dir.path(), input);
        ASSERT_EQ(store->shards().size(), 7u);

        for (std::size_t s = 0; s < store->shards().size(); ++s) {
            const std::size_t rows = store->shards()[s].size();
            Matrix got[kSlabInputMatrices];
            double* mats[kSlabInputMatrices];
            for (std::size_t m = 0; m < kSlabInputMatrices; ++m) {
                got[m] = Matrix(rows, kSlots);
                mats[m] = got[m].data().data();
            }
            store->read_inputs(s, mats);
            const Matrix* sources[kSlabInputMatrices] = {
                &input.sx, &input.sy, &input.vx, &input.vy,
                &input.existence};
            const std::size_t begin = store->shards()[s].begin;
            for (std::size_t m = 0; m < kSlabInputMatrices; ++m) {
                for (std::size_t k = 0; k < rows; ++k) {
                    for (std::size_t j = 0; j < kSlots; ++j) {
                        const double want = (*sources[m])(begin + k, j);
                        const double expect =
                            tier == StorageTier::kF64
                                ? want
                                : static_cast<double>(
                                      static_cast<float>(want));
                        EXPECT_EQ(expect, got[m](k, j))
                            << "tier=" << to_string(tier) << " shard=" << s
                            << " matrix=" << m;
                    }
                }
            }
        }
    }
}

TEST(SlabStoreTest, ReopenVerifiesGeometryAndF32HalvesTheFile) {
    const ItscsInput input = fleet_input();
    TempDir dir64("geom64");
    TempDir dir32("geom32");
    RuntimeConfig config = runtime_config(1);
    FleetRunner runner64(config);
    config.storage = StorageTier::kF32;
    FleetRunner runner32(config);
    std::size_t bytes64 = 0;
    std::size_t bytes32 = 0;
    {
        auto store = runner64.create_slab_store(dir64.path(), input);
        bytes64 = store->geometry().file_size();
    }
    {
        auto store = runner32.create_slab_store(dir32.path(), input);
        bytes32 = store->geometry().file_size();
    }
    EXPECT_LT(bytes32, bytes64);

    SlabStore reopened(dir64.path());
    EXPECT_EQ(reopened.geometry().participants, kParticipants);
    EXPECT_EQ(reopened.geometry().slots, kSlots);
    EXPECT_EQ(reopened.geometry().tier, StorageTier::kF64);
    EXPECT_EQ(reopened.shards().size(), 7u);
    EXPECT_EQ(reopened.geometry().input_fingerprint, input.fingerprint());
}

// ---- streamed vs in-core bit-identity ------------------------------------

TEST(RuntimeScaleTest, StreamedIsBitIdenticalToInCoreAt127Threads) {
    const ItscsInput input = fleet_input();
    const FleetResult in_core =
        FleetRunner(runtime_config(1)).run(input, ItscsConfig{});

    std::vector<std::uint32_t> reference_crcs;
    for (const std::size_t threads : {1u, 2u, 7u}) {
        TempDir dir("identity");
        FleetRunner runner(runtime_config(threads));
        auto store = runner.create_slab_store(dir.path(), input);
        PipelineContext ctx;
        const FleetResult fleet =
            runner.run_streamed(*store, ItscsConfig{}, &ctx);

        EXPECT_TRUE(streamed_matches_aggregate(*store, in_core.aggregate))
            << "threads=" << threads;
        EXPECT_EQ(fleet.shards.size(), in_core.shards.size());
        EXPECT_EQ(ctx.counters().slab_shards_streamed, 7u);
        // Streamed mode leaves the fleet on disk: no aggregate matrices.
        EXPECT_EQ(fleet.aggregate.detection.rows(), 0u);

        std::vector<std::uint32_t> crcs;
        for (std::size_t s = 0; s < store->shards().size(); ++s) {
            crcs.push_back(store->output_crc(s));
        }
        if (reference_crcs.empty()) {
            reference_crcs = crcs;
        }
        EXPECT_EQ(crcs, reference_crcs) << "threads=" << threads;
    }
}

// ---- kill-and-resume through the slab store ------------------------------

TEST(RuntimeScaleTest, TornOutputSlabsReRunAndIntactOnesRestore) {
    const ItscsInput input = fleet_input();
    TempDir slab_dir("resume_slabs");
    TempDir cp_dir("resume_cp");

    RuntimeConfig config = runtime_config(2);
    config.checkpoint_dir = cp_dir.path();

    // Pristine pass: every shard computed, committed, and CRC-journaled.
    std::vector<std::uint32_t> pristine_crcs;
    std::size_t output_region_begin = 0;
    std::size_t output_stride = 0;
    {
        FleetRunner runner(config);
        auto store = runner.create_slab_store(slab_dir.path(), input);
        const FleetResult fleet =
            runner.run_streamed(*store, ItscsConfig{});
        EXPECT_TRUE(fleet.checkpoint.enabled);
        EXPECT_EQ(fleet.checkpoint.shards_run, 7u);
        for (std::size_t s = 0; s < store->shards().size(); ++s) {
            pristine_crcs.push_back(store->output_crc(s));
        }
        const SlabGeometry& g = store->geometry();
        output_region_begin = g.shard_count * g.input_stride();
        output_stride = g.output_stride();
        store->sync();
    }

    // The crash: tear the file inside shard 3's output slab. Shards 0-2
    // keep their committed outputs; shards 3-6 read back zero-extended
    // and must fail their journaled CRCs.
    std::filesystem::resize_file(
        std::filesystem::path(slab_dir.path()) / "slabs.bin",
        output_region_begin + 3 * output_stride + output_stride / 2);

    config.resume = true;
    FleetRunner runner(config);
    SlabStore reopened(slab_dir.path());
    const FleetResult resumed =
        runner.run_streamed(reopened, ItscsConfig{});
    EXPECT_EQ(resumed.checkpoint.shards_loaded, 3u);
    EXPECT_EQ(resumed.checkpoint.shards_run, 4u);
    EXPECT_GE(resumed.checkpoint.corrupt_frames, 4u);

    // Re-running the torn shards regenerates the exact pristine bytes.
    for (std::size_t s = 0; s < reopened.shards().size(); ++s) {
        EXPECT_EQ(reopened.output_crc(s), pristine_crcs[s]) << "shard " << s;
    }
}

TEST(RuntimeScaleTest, IntactResumeRestoresEveryShardWithoutRerunning) {
    const ItscsInput input = fleet_input();
    TempDir slab_dir("intact_slabs");
    TempDir cp_dir("intact_cp");

    RuntimeConfig config = runtime_config(1);
    config.checkpoint_dir = cp_dir.path();
    {
        FleetRunner runner(config);
        auto store = runner.create_slab_store(slab_dir.path(), input);
        runner.run_streamed(*store, ItscsConfig{});
        store->sync();
    }
    config.resume = true;
    FleetRunner runner(config);
    SlabStore reopened(slab_dir.path());
    const FleetResult resumed =
        runner.run_streamed(reopened, ItscsConfig{});
    EXPECT_EQ(resumed.checkpoint.shards_loaded, 7u);
    EXPECT_EQ(resumed.checkpoint.shards_run, 0u);
    EXPECT_EQ(resumed.checkpoint.corrupt_frames, 0u);
}

// ---- by_cell planner ------------------------------------------------------

// Four well-separated spatial clusters plus two never-observed rows.
void clustered_positions(Matrix& sx, Matrix& sy, Matrix& existence) {
    const std::size_t n = sx.rows();
    const std::size_t t = sx.cols();
    for (std::size_t i = 0; i < n; ++i) {
        if (i >= n - 2) {
            continue;  // unlocated: existence stays 0
        }
        const double cx = (i % 2 == 0) ? 100.0 : 900.0;
        const double cy = (i % 4 < 2) ? 100.0 : 900.0;
        for (std::size_t j = 0; j < t; ++j) {
            sx(i, j) = cx + static_cast<double>((i * 7 + j) % 11);
            sy(i, j) = cy + static_cast<double>((i * 5 + j) % 13);
            existence(i, j) = 1.0;
        }
    }
}

TEST(ShardPlanCellTest, ByCellIsDeterministicBalancedAndComplete) {
    const std::size_t n = 42;
    const std::size_t t = 12;
    const std::size_t target = 8;
    Matrix sx(n, t);
    Matrix sy(n, t);
    Matrix existence(n, t);
    clustered_positions(sx, sy, existence);

    const ShardPlan plan = ShardPlan::by_cell(sx, sy, existence, target);
    const ShardPlan again = ShardPlan::by_cell(sx, sy, existence, target);
    EXPECT_EQ(plan.fingerprint(), again.fingerprint());
    EXPECT_EQ(plan.mode(), PlannerMode::kCell);
    EXPECT_GE(plan.cells(), 2u);

    // Balance contract: every shard within [max(1, target/2), 2*target],
    // except at most one undersized trailing shard.
    std::size_t undersized = 0;
    for (const Shard& shard : plan.shards()) {
        EXPECT_LE(shard.size(), 2 * target);
        if (shard.size() < std::max<std::size_t>(1, target / 2)) {
            ++undersized;
        }
    }
    EXPECT_LE(undersized, 1u);

    // Completeness: every row exactly once.
    std::vector<int> seen(n, 0);
    for (const Shard& shard : plan.shards()) {
        for (std::size_t k = 0; k < shard.size(); ++k) {
            ASSERT_LT(shard.row_at(k), n);
            seen[shard.row_at(k)] += 1;
        }
    }
    EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0),
              static_cast<int>(n));
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](int c) { return c == 1; }));

    // The two unlocated rows land in the final shard(s), after every
    // located cell.
    const Shard& last = plan.shards().back();
    bool last_holds_unlocated = false;
    for (std::size_t k = 0; k < last.size(); ++k) {
        last_holds_unlocated =
            last_holds_unlocated || last.row_at(k) >= n - 2;
    }
    EXPECT_TRUE(last_holds_unlocated);
}

TEST(ShardPlanCellTest, CellPlannedFleetMatchesRowPlannedNumerics) {
    // Shard membership changes the *grouping*, not any participant's
    // data: a cell-planned run must agree cell-by-cell with solving the
    // same member sets under any other grouping. Here: detection flags
    // per participant must match a whole-fleet... shard-local solve, so
    // we only assert the run completes and covers everyone.
    const ItscsInput input = fleet_input();
    RuntimeConfig config;
    config.threads = 2;
    config.planner = PlannerMode::kCell;
    config.shard_size = 6;
    FleetRunner runner(config);
    const FleetResult fleet = runner.run(input, ItscsConfig{});
    EXPECT_EQ(fleet.aggregate.detection.rows(), kParticipants);

    // Determinism across thread counts holds for cell plans too.
    RuntimeConfig config1 = config;
    config1.threads = 7;
    const FleetResult again =
        FleetRunner(config1).run(input, ItscsConfig{});
    EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                              again.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                              again.aggregate.reconstructed_x));
}

// ---- float32 tier verification gate --------------------------------------

TEST(MixedTierTest, ZeroToleranceGateTripsAndAdoptsExactResults) {
    const ItscsInput input = fleet_input();
    const FleetResult exact =
        FleetRunner(runtime_config(1)).run(input, ItscsConfig{});

    RuntimeConfig config = runtime_config(1);
    config.kernel_tier = KernelTier::kMixed;
    config.mixed_verify_every = 1;  // gate every shard
    config.mixed_verify_tolerance = 0.0;  // any f32 drift trips
    PipelineContext ctx;
    const FleetResult gated =
        FleetRunner(config).run(input, ItscsConfig{}, &ctx);

    EXPECT_EQ(ctx.counters().mixed_gate_checks, 7u);
    EXPECT_GE(ctx.counters().mixed_gate_trips, 1u);
    // Every tripped shard adopted the exact re-solve, so the fleet output
    // is bit-identical to the pure exact run.
    EXPECT_TRUE(bitwise_equal(gated.aggregate.detection,
                              exact.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(gated.aggregate.reconstructed_x,
                              exact.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(gated.aggregate.reconstructed_y,
                              exact.aggregate.reconstructed_y));
}

TEST(MixedTierTest, OpenGateLetsMixedResultsThroughWithinTolerance) {
    const ItscsInput input = fleet_input();
    const FleetResult exact =
        FleetRunner(runtime_config(1)).run(input, ItscsConfig{});

    RuntimeConfig config = runtime_config(1);
    config.kernel_tier = KernelTier::kMixed;
    config.mixed_verify_every = 1;
    config.mixed_verify_tolerance = 1e9;  // never trips
    PipelineContext ctx;
    const FleetResult mixed =
        FleetRunner(config).run(input, ItscsConfig{}, &ctx);

    EXPECT_EQ(ctx.counters().mixed_gate_checks, 7u);
    EXPECT_EQ(ctx.counters().mixed_gate_trips, 0u);
    // The mixed tier genuinely computes in f32: its reconstructions
    // differ from exact in the low bits (were they identical, the
    // trip test above would be vacuous)...
    EXPECT_FALSE(bitwise_equal(mixed.aggregate.reconstructed_x,
                               exact.aggregate.reconstructed_x));
    // ...but stays within the documented quality envelope.
    double max_rel = 0.0;
    double num = 0.0;
    double den = 0.0;
    const auto dm = mixed.aggregate.reconstructed_x.data();
    const auto de = exact.aggregate.reconstructed_x.data();
    for (std::size_t k = 0; k < dm.size(); ++k) {
        num += (dm[k] - de[k]) * (dm[k] - de[k]);
        den += de[k] * de[k];
    }
    max_rel = den > 0.0 ? std::sqrt(num / den) : 0.0;
    EXPECT_LE(max_rel, 1e-3);
}

}  // namespace
}  // namespace mcs
