// Tests for the mcs::runtime subsystem: ThreadPool (torture: exceptions,
// nesting, shutdown), ShardPlan partitioning, PipelineContext::merge,
// Workspace::clear, the kernel RowExecutor seam, and — the core contract —
// FleetRunner determinism: shard-parallel output is bit-identical to
// sequential per-shard execution at any thread count.
//
// This binary is also the TSan workload (see the `tsan` CMake preset):
// every concurrency primitive of the runtime layer is exercised here.
#include "runtime/fleet_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "corruption/adversary.hpp"
#include "corruption/scenario.hpp"
#include "linalg/kernel_tier.hpp"
#include "eval/methods.hpp"
#include "runtime/kernel_parallel.hpp"
#include "runtime/shard_plan.hpp"
#include "runtime/thread_pool.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

bool bitwise_equal(const Matrix& a, const Matrix& b) {
    const auto da = a.data();
    const auto db = b.data();
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::equal(da.begin(), da.end(), db.begin());
}

// ---- ShardPlan ---------------------------------------------------------

void expect_cover(const ShardPlan& plan) {
    std::size_t expected_begin = 0;
    for (const Shard& shard : plan.shards()) {
        EXPECT_EQ(shard.begin, expected_begin);
        EXPECT_LT(shard.begin, shard.end);
        expected_begin = shard.end;
    }
    EXPECT_EQ(expected_begin, plan.rows());
}

TEST(ShardPlan, BySizeSpreadBalancesWithinOneRow) {
    const ShardPlan plan = ShardPlan::by_size(100, 30);
    EXPECT_EQ(plan.count(), 4u);  // ceil(100/30)
    expect_cover(plan);
    std::size_t lo = 100, hi = 0;
    for (const Shard& shard : plan.shards()) {
        lo = std::min(lo, shard.size());
        hi = std::max(hi, shard.size());
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST(ShardPlan, BySizeTailKeepsNominalSize) {
    const ShardPlan plan =
        ShardPlan::by_size(100, 30, ShardRemainder::kTail);
    EXPECT_EQ(plan.count(), 4u);
    expect_cover(plan);
    EXPECT_EQ(plan.shards()[0].size(), 30u);
    EXPECT_EQ(plan.shards()[2].size(), 30u);
    EXPECT_EQ(plan.shards()[3].size(), 10u);  // the short tail
}

TEST(ShardPlan, ByCountClampsToRows) {
    const ShardPlan plan = ShardPlan::by_count(3, 8);
    EXPECT_EQ(plan.count(), 3u);  // no empty shards
    expect_cover(plan);
}

TEST(ShardPlan, ExactDivisionIsPolicyIndependent) {
    const ShardPlan spread = ShardPlan::by_size(120, 30);
    const ShardPlan tail =
        ShardPlan::by_size(120, 30, ShardRemainder::kTail);
    ASSERT_EQ(spread.count(), tail.count());
    for (std::size_t k = 0; k < spread.count(); ++k) {
        EXPECT_EQ(spread.shards()[k].begin, tail.shards()[k].begin);
        EXPECT_EQ(spread.shards()[k].end, tail.shards()[k].end);
    }
}

TEST(ShardPlan, RejectsDegenerateInputs) {
    EXPECT_THROW(ShardPlan::by_size(0, 4), Error);
    EXPECT_THROW(ShardPlan::by_size(10, 0), Error);
    EXPECT_THROW(ShardPlan::by_count(10, 0), Error);
    EXPECT_THROW(ShardPlan::whole(0), Error);
}

// ---- ThreadPool --------------------------------------------------------

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            hits[k].fetch_add(1, std::memory_order_relaxed);
        }
    });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                   [](std::size_t lo, std::size_t) {
                                       if (lo % 2 == 0) {
                                           throw Error("boom");
                                       }
                                   }),
                 Error);
    // The pool survives the exception and keeps working.
    std::atomic<int> sum{0};
    pool.parallel_for(0, 10, 1, [&](std::size_t lo, std::size_t hi) {
        sum.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, NestedParallelForIsRejected) {
    ThreadPool pool(2);
    bool nested_threw = false;
    pool.parallel_for(0, 2, 1, [&](std::size_t, std::size_t) {
        try {
            pool.parallel_for(0, 2, 1, [](std::size_t, std::size_t) {});
        } catch (const Error&) {
            nested_threw = true;  // one block is enough to prove it
        }
    });
    EXPECT_TRUE(nested_threw);
}

TEST(ThreadPool, ShutdownRunsAllQueuedWork) {
    std::atomic<int> executed{0};
    {
        ThreadPool pool(ThreadPool::Options{2, 256});
        for (int k = 0; k < 100; ++k) {
            pool.submit([&executed] {
                executed.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destructor: graceful shutdown with (most of) the queue pending.
    }
    EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPool, SubmittedTaskExceptionSurfacesViaTakeError) {
    ThreadPool pool(2);
    pool.submit([] { throw Error("task failed"); });
    EXPECT_THROW(pool.wait_idle(), Error);
    EXPECT_EQ(pool.take_error(), nullptr);  // consumed by wait_idle
}

TEST(ThreadPool, TakeErrorsCollectsEveryLabeledFailure) {
    ThreadPool pool(2);
    for (int k = 0; k < 3; ++k) {
        pool.submit([k] { throw Error("task " + std::to_string(k)); },
                    "shard " + std::to_string(k));
    }
    pool.submit([] {});  // a healthy task must not register
    try {
        pool.wait_idle();
    } catch (const Error&) {
        // wait_idle re-throws the first failure but also cleared the set;
        // take_errors() after a drain is empty.
    }
    EXPECT_TRUE(pool.take_errors().empty());

    for (int k = 0; k < 3; ++k) {
        pool.submit([k] { throw Error("task " + std::to_string(k)); },
                    "shard " + std::to_string(k));
    }
    // Drain without wait_idle's rethrow: spin until the pool went idle.
    std::vector<ThreadPool::TaskError> errors;
    for (;;) {
        auto batch = pool.take_errors();
        errors.insert(errors.end(), batch.begin(), batch.end());
        if (errors.size() == 3) {
            break;
        }
        std::this_thread::yield();
    }
    std::vector<std::string> labels;
    for (const ThreadPool::TaskError& error : errors) {
        ASSERT_NE(error.error, nullptr);
        labels.push_back(error.label);
        EXPECT_THROW(std::rethrow_exception(error.error), Error);
    }
    std::sort(labels.begin(), labels.end());
    EXPECT_EQ(labels,
              (std::vector<std::string>{"shard 0", "shard 1", "shard 2"}));
    EXPECT_EQ(pool.take_error(), nullptr);
}

TEST(ThreadPool, TakeErrorReturnsFirstAndClearsAll) {
    ThreadPool pool(1);  // one worker: completion order == submission order
    pool.submit([] { throw Error("first"); }, "a");
    pool.submit([] { throw Error("second"); }, "b");
    try {
        pool.wait_idle();
        FAIL() << "wait_idle should have re-thrown";
    } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "first");
    }
    EXPECT_EQ(pool.take_error(), nullptr);
    EXPECT_TRUE(pool.take_errors().empty());
}

TEST(ThreadPool, BoundedQueueBlocksProducerWithoutDeadlock) {
    // Capacity 2 with slow-ish tasks: submit() must block (not throw, not
    // drop) and everything still runs.
    ThreadPool pool(ThreadPool::Options{2, 2});
    std::atomic<int> executed{0};
    for (int k = 0; k < 50; ++k) {
        pool.submit([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPool, WorkerIndexIsStableAndBounded) {
    ThreadPool pool(3);
    EXPECT_FALSE(ThreadPool::on_worker_thread());
    EXPECT_EQ(ThreadPool::worker_index(), static_cast<std::size_t>(-1));
    std::vector<std::atomic<int>> index_seen(3);
    pool.parallel_for(0, 64, 1, [&](std::size_t, std::size_t) {
        ASSERT_TRUE(ThreadPool::on_worker_thread());
        const std::size_t index = ThreadPool::worker_index();
        ASSERT_LT(index, 3u);
        index_seen[index].fetch_add(1, std::memory_order_relaxed);
    });
    int total = 0;
    for (auto& count : index_seen) {
        total += count.load();
    }
    EXPECT_GT(total, 0);
}

// ---- PipelineContext::merge -------------------------------------------

TEST(ContextMerge, SumsCountersAndFoldsPhases) {
    PipelineContext a(1);
    PipelineContext b(2);
    a.counters().gemm_flops = 100;
    a.counters().asd_iterations = 3;
    b.counters().gemm_flops = 50;
    b.counters().cs_solves = 7;
    a.phase_begin("detect");
    a.phase_end();
    b.phase_begin("detect");
    b.phase_end();
    b.phase_begin("correct");
    b.phase_end();

    a.merge(b);
    EXPECT_EQ(a.counters().gemm_flops, 150u);
    EXPECT_EQ(a.counters().asd_iterations, 3u);
    EXPECT_EQ(a.counters().cs_solves, 7u);
    ASSERT_EQ(a.phase_stats().size(), 2u);
    EXPECT_EQ(a.phase_stats()[0].name, "detect");
    EXPECT_EQ(a.phase_stats()[0].calls, 2u);
    EXPECT_EQ(a.phase_stats()[1].name, "correct");
    EXPECT_EQ(a.phase_stats()[1].calls, 1u);
}

TEST(ContextMerge, RejectsOpenPhasesAndSelfMerge) {
    PipelineContext a;
    PipelineContext b;
    EXPECT_THROW(a.merge(a), Error);
    a.phase_begin("open");
    EXPECT_THROW(a.merge(b), Error);
    a.phase_end();
    b.phase_begin("open");
    EXPECT_THROW(a.merge(b), Error);
    b.phase_end();
    a.merge(b);  // both closed: fine
}

// ---- Workspace::clear --------------------------------------------------

TEST(WorkspaceClear, ReleasesPooledScratchKeepsLifetimeTotals) {
    Workspace ws;
    ws.release(ws.acquire(8, 8));
    ws.release(ws.acquire(16, 4));
    EXPECT_EQ(ws.pooled(), 2u);
    EXPECT_EQ(ws.created(), 2u);
    ws.clear();
    EXPECT_EQ(ws.pooled(), 0u);
    EXPECT_EQ(ws.created(), 2u);  // lifetime total keeps counting
    ws.release(ws.acquire(8, 8));  // re-acquire allocates afresh
    EXPECT_EQ(ws.created(), 3u);
}

// ---- Kernel RowExecutor seam ------------------------------------------

TEST(KernelParallel, RowBlockedKernelsAreBitIdentical) {
    Rng rng(33);
    const std::size_t n = 3 * kKernelRowBlockThreshold;
    Matrix a(n, 40);
    Matrix b(40, 24);
    for (double& v : a.data()) {
        v = rng.normal();
    }
    for (double& v : b.data()) {
        v = rng.normal();
    }
    Matrix serial(n, 24);
    multiply_into(serial, a, b);

    KernelParallelScope scope(3);
    ASSERT_TRUE(scope.active());
    ASSERT_NE(kernel_row_executor(), nullptr);
    Matrix parallel(n, 24);
    multiply_into(parallel, a, b);
    EXPECT_TRUE(bitwise_equal(serial, parallel));

    Matrix serial_t(n, n);
    Matrix parallel_t(n, n);
    RowExecutor* executor = kernel_row_executor();
    set_kernel_row_executor(nullptr);
    multiply_transposed_into(serial_t, a, a);
    set_kernel_row_executor(executor);
    multiply_transposed_into(parallel_t, a, a);
    EXPECT_TRUE(bitwise_equal(serial_t, parallel_t));
}

TEST(KernelParallel, InactiveScopeInstallsNothing) {
    KernelParallelScope scope(1);
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(kernel_row_executor(), nullptr);
}

// ---- FleetRunner -------------------------------------------------------

ItscsInput fleet_input(std::size_t participants, std::size_t slots) {
    const TraceDataset truth = make_small_dataset(9, participants, slots);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.2;
    corruption.fault_ratio = 0.2;
    corruption.seed = 13;
    return to_itscs_input(corrupt(truth, corruption));
}

TEST(FleetRunner, MatchesSequentialPerShardRunBitForBit) {
    const ItscsInput input = fleet_input(36, 60);
    const ItscsConfig framework;

    RuntimeConfig config;
    config.threads = 2;
    config.shard_size = 12;
    FleetRunner runner(config);
    const FleetResult fleet = runner.run(input, framework);

    // Reference: run_itscs over each shard, sequentially, by hand.
    const ShardPlan plan = runner.plan_for(36);
    ASSERT_EQ(plan.count(), 3u);
    for (const Shard& shard : plan.shards()) {
        ItscsInput si;
        si.sx = input.sx.block(shard.begin, 0, shard.size(), 60);
        si.sy = input.sy.block(shard.begin, 0, shard.size(), 60);
        si.vx = input.vx.block(shard.begin, 0, shard.size(), 60);
        si.vy = input.vy.block(shard.begin, 0, shard.size(), 60);
        si.existence =
            input.existence.block(shard.begin, 0, shard.size(), 60);
        si.tau_s = input.tau_s;
        const ItscsResult expected = run_itscs(si, framework);
        EXPECT_TRUE(bitwise_equal(
            expected.detection,
            fleet.aggregate.detection.block(shard.begin, 0, shard.size(),
                                            60)));
        EXPECT_TRUE(bitwise_equal(
            expected.reconstructed_x,
            fleet.aggregate.reconstructed_x.block(shard.begin, 0,
                                                  shard.size(), 60)));
        EXPECT_TRUE(bitwise_equal(
            expected.reconstructed_y,
            fleet.aggregate.reconstructed_y.block(shard.begin, 0,
                                                  shard.size(), 60)));
        EXPECT_EQ(fleet.shards[shard.index].iterations,
                  expected.iterations);
        EXPECT_EQ(fleet.shards[shard.index].converged, expected.converged);
    }
}

TEST(FleetRunner, ThreadCountNeverChangesResults) {
    const ItscsInput input = fleet_input(35, 50);
    const ItscsConfig framework;

    std::unique_ptr<FleetResult> reference;
    for (const std::size_t threads : {1u, 2u, 7u}) {
        RuntimeConfig config;
        config.threads = threads;
        config.shard_size = 10;  // shards of 9/9/9/8 (kSpread)
        FleetRunner runner(config);
        PipelineContext ctx(99);
        FleetResult fleet = runner.run(input, framework, &ctx);
        ASSERT_EQ(fleet.shards.size(), 4u);
        // Merged instrumentation is deterministic too.
        EXPECT_GT(ctx.counters().itscs_iterations, 0u);
        EXPECT_GT(ctx.counters().cs_solves, 0u);
        if (reference == nullptr) {
            reference = std::make_unique<FleetResult>(std::move(fleet));
            continue;
        }
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                                  reference->aggregate.detection))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                                  reference->aggregate.reconstructed_x))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_y,
                                  reference->aggregate.reconstructed_y))
            << "threads=" << threads;
        EXPECT_EQ(fleet.aggregate.iterations,
                  reference->aggregate.iterations);
        ASSERT_EQ(fleet.shards.size(), reference->shards.size());
        for (std::size_t s = 0; s < fleet.shards.size(); ++s) {
            EXPECT_EQ(fleet.shards[s].seed, reference->shards[s].seed);
            EXPECT_EQ(fleet.shards[s].iterations,
                      reference->shards[s].iterations);
        }
    }
}

TEST(FleetRunner, FastTierDeterministicAcrossThreadCounts) {
    // The fast tier is not bit-identical to exact, but it promises the
    // same schedule-independence: a fixed RuntimeConfig (minus threads)
    // gives one bit pattern at any worker count.
    const ItscsInput input = fleet_input(35, 50);
    const ItscsConfig framework;

    std::unique_ptr<FleetResult> reference;
    for (const std::size_t threads : {1u, 2u}) {
        RuntimeConfig config;
        config.threads = threads;
        config.shard_size = 10;
        config.kernel_tier = KernelTier::kFast;
        FleetRunner runner(config);
        PipelineContext ctx(99);
        FleetResult fleet = runner.run(input, framework, &ctx);
        // The merged context records the tier the shards ran under.
        EXPECT_EQ(ctx.kernel_tier(), KernelTier::kFast);
        if (reference == nullptr) {
            reference = std::make_unique<FleetResult>(std::move(fleet));
            continue;
        }
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                                  reference->aggregate.detection))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                                  reference->aggregate.reconstructed_x))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_y,
                                  reference->aggregate.reconstructed_y))
            << "threads=" << threads;
    }

    // And the tier never leaks: after the fast runs, this thread's
    // ambient tier is still the exact default.
    EXPECT_EQ(active_kernel_tier(), KernelTier::kExact);
}

TEST(FleetRunner, LrsdBackendDeterministicAcrossThreadCounts) {
    // The solver seam rides the same shard-order merge as everything else:
    // a fixed RuntimeConfig (minus threads) under the LRSD backend gives
    // one bit pattern at any worker count, and the merged context carries
    // the backend stamp and its per-backend counters.
    const ItscsInput input = fleet_input(35, 50);
    const ItscsConfig framework;

    std::unique_ptr<FleetResult> reference;
    for (const std::size_t threads : {1u, 2u, 7u}) {
        RuntimeConfig config;
        config.threads = threads;
        config.shard_size = 10;
        config.solver = SolverKind::kLrsd;
        FleetRunner runner(config);
        PipelineContext ctx(99);
        FleetResult fleet = runner.run(input, framework, &ctx);
        EXPECT_EQ(ctx.solver_backend(), SolverKind::kLrsd);
        EXPECT_GT(ctx.counters().solves_lrsd, 0u);
        EXPECT_EQ(ctx.counters().solves_asd, 0u);
        EXPECT_GT(ctx.counters().lrsd_rounds, 0u);
        if (reference == nullptr) {
            reference = std::make_unique<FleetResult>(std::move(fleet));
            continue;
        }
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                                  reference->aggregate.detection))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                                  reference->aggregate.reconstructed_x))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_y,
                                  reference->aggregate.reconstructed_y))
            << "threads=" << threads;
    }
}

TEST(FleetRunner, RuntimeSolverYieldsToExplicitFrameworkChoice) {
    // The runtime knob is a default, not an override: when the ItscsConfig
    // already names a non-default backend, FleetRunner leaves it alone.
    const ItscsInput input = fleet_input(24, 40);
    ItscsConfig framework;
    framework.cs.solver = SolverKind::kLrsd;

    RuntimeConfig config;
    config.threads = 2;
    config.shard_count = 2;
    config.solver = SolverKind::kAsd;  // the default — must not demote
    FleetRunner runner(config);
    PipelineContext ctx;
    runner.run(input, framework, &ctx);
    EXPECT_EQ(ctx.solver_backend(), SolverKind::kLrsd);
    EXPECT_GT(ctx.counters().solves_lrsd, 0u);
}

TEST(FleetRunner, RunnerIsReusableAndClearsArenas) {
    const ItscsInput input = fleet_input(24, 40);
    RuntimeConfig config;
    config.threads = 2;
    config.shard_count = 3;
    FleetRunner runner(config);
    const FleetResult first = runner.run(input, ItscsConfig{});
    const FleetResult second = runner.run(input, ItscsConfig{});
    EXPECT_TRUE(bitwise_equal(first.aggregate.detection,
                              second.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(first.aggregate.reconstructed_x,
                              second.aggregate.reconstructed_x));
}

TEST(FleetRunner, MergedHistorySumsShards) {
    const ItscsInput input = fleet_input(24, 40);
    RuntimeConfig config;
    config.threads = 1;
    config.shard_count = 2;
    FleetRunner runner(config);
    const FleetResult fleet = runner.run(input, ItscsConfig{});
    ASSERT_EQ(fleet.aggregate.history.size(), fleet.aggregate.iterations);
    std::size_t max_iterations = 0;
    bool all_converged = true;
    for (const ShardRunReport& shard : fleet.shards) {
        max_iterations = std::max(max_iterations, shard.iterations);
        all_converged = all_converged && shard.converged;
    }
    EXPECT_EQ(fleet.aggregate.iterations, max_iterations);
    EXPECT_EQ(fleet.aggregate.converged, all_converged);
}

// ---- Parallel streaming ------------------------------------------------

SlotUpload slot_of(const CorruptedDataset& data, std::size_t j) {
    const std::size_t n = data.participants();
    SlotUpload upload;
    upload.x.resize(n);
    upload.y.resize(n);
    upload.vx.resize(n);
    upload.vy.resize(n);
    upload.observed.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        upload.x[i] = data.sx(i, j);
        upload.y[i] = data.sy(i, j);
        upload.vx[i] = data.vx(i, j);
        upload.vy[i] = data.vy(i, j);
        upload.observed[i] = data.existence(i, j) != 0.0 ? 1 : 0;
    }
    return upload;
}

TEST(ParallelStreaming, ShardedWindowsMatchInlineShardedWindows) {
    const TraceDataset truth = make_small_dataset(5, 18, 80);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.15;
    corruption.fault_ratio = 0.15;
    const CorruptedDataset data = corrupt(truth, corruption);

    auto run_stream = [&](std::size_t threads) {
        RuntimeConfig runtime;
        runtime.threads = threads;
        runtime.shard_count = 3;  // decomposition fixed across thread counts
        FleetRunner runner(runtime);
        StreamingDetector::Config config;
        config.window = 40;
        config.stride = 20;
        config.evaluator = runner.window_evaluator();
        StreamingDetector detector(18, truth.tau_s, config);
        std::vector<WindowReport> reports;
        for (std::size_t j = 0; j < truth.slots(); ++j) {
            detector.push_slot(slot_of(data, j));
            while (auto report = detector.poll()) {
                reports.push_back(std::move(*report));
            }
        }
        return reports;
    };

    const std::vector<WindowReport> parallel = run_stream(3);
    const std::vector<WindowReport> inline_run = run_stream(1);
    ASSERT_EQ(parallel.size(), inline_run.size());
    ASSERT_EQ(parallel.size(), 3u);  // slots 40, 60, 80
    for (std::size_t w = 0; w < parallel.size(); ++w) {
        EXPECT_EQ(parallel[w].first_slot, inline_run[w].first_slot);
        EXPECT_TRUE(bitwise_equal(parallel[w].detection,
                                  inline_run[w].detection));
        EXPECT_TRUE(bitwise_equal(parallel[w].reconstructed_x,
                                  inline_run[w].reconstructed_x));
        EXPECT_TRUE(bitwise_equal(parallel[w].reconstructed_y,
                                  inline_run[w].reconstructed_y));
        EXPECT_EQ(parallel[w].iterations, inline_run[w].iterations);
    }
}

// ---- Degenerate shards through the guarded fleet path ------------------

bool all_finite(const Matrix& m) {
    return std::all_of(m.data().begin(), m.data().end(),
                       [](double v) { return std::isfinite(v); });
}

TEST(FleetRunner, AllMissingShardCompletesAndIsolatesItsFailure) {
    ItscsInput input = fleet_input(24, 40);
    // Participants 8..15 never report: an entire shard with ℰ ≡ 0.
    for (std::size_t i = 8; i < 16; ++i) {
        for (std::size_t j = 0; j < 40; ++j) {
            input.existence(i, j) = 0.0;
            input.sx(i, j) = 0.0;
            input.sy(i, j) = 0.0;
            input.vx(i, j) = 0.0;
            input.vy(i, j) = 0.0;
        }
    }
    RuntimeConfig config;
    config.threads = 2;
    config.shard_size = 8;
    FleetRunner runner(config);
    const FleetResult fleet = runner.run(input, ItscsConfig{});

    ASSERT_EQ(fleet.shards.size(), 3u);
    EXPECT_TRUE(all_finite(fleet.aggregate.detection));
    EXPECT_TRUE(all_finite(fleet.aggregate.reconstructed_x));
    EXPECT_TRUE(all_finite(fleet.aggregate.reconstructed_y));
    // Whatever the empty shard did, its neighbours must stay nominal.
    EXPECT_EQ(fleet.shards[0].level, DegradationLevel::kNominal);
    EXPECT_EQ(fleet.shards[2].level, DegradationLevel::kNominal);
    if (fleet.shards[1].level != DegradationLevel::kNominal) {
        EXPECT_FALSE(fleet.shards[1].failures.empty());
        EXPECT_EQ(fleet.shards[1].failures.front().shard, 1u);
    }
}

TEST(FleetRunner, SingleParticipantShardCompletes) {
    const ItscsInput input = fleet_input(9, 40);
    RuntimeConfig config;
    config.threads = 2;
    config.shard_size = 8;  // shards [0, 8) and the lone row [8, 9)
    config.remainder = ShardRemainder::kTail;
    FleetRunner runner(config);
    const FleetResult fleet = runner.run(input, ItscsConfig{});

    ASSERT_EQ(fleet.shards.size(), 2u);
    EXPECT_EQ(fleet.shards[1].shard.size(), 1u);
    EXPECT_TRUE(all_finite(fleet.aggregate.detection));
    EXPECT_TRUE(all_finite(fleet.aggregate.reconstructed_x));
    EXPECT_TRUE(all_finite(fleet.aggregate.reconstructed_y));
}

// ---- Structured adversary through the runtime seam ---------------------

TEST(FleetRunner, AdversaryRunIsBitIdenticalAcrossThreadCounts) {
    const ItscsInput input = fleet_input(30, 40);
    const AdversaryInjector adversary(
        AdversarySpec::parse("collude=4,outage=6,replay=2,seed=21"));

    std::unique_ptr<FleetResult> reference;
    for (const std::size_t threads : {1u, 2u, 7u}) {
        RuntimeConfig config;
        config.threads = threads;
        config.shard_size = 10;
        config.adversary = &adversary;
        FleetRunner runner(config);
        FleetResult fleet = runner.run(input, ItscsConfig{});
        EXPECT_EQ(fleet.adversary.colluders.size(), 4u);
        EXPECT_EQ(fleet.adversary.replays.size(), 2u);
        if (reference == nullptr) {
            reference = std::make_unique<FleetResult>(std::move(fleet));
            continue;
        }
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                                  reference->aggregate.detection))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                                  reference->aggregate.reconstructed_x))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_y,
                                  reference->aggregate.reconstructed_y))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.adversary.mask,
                                  reference->adversary.mask))
            << "threads=" << threads;
    }
}

TEST(FleetRunner, AdversaryMustNotDependOnShardBoundaries) {
    // Cross-participant faults are applied fleet-wide before sharding:
    // re-sharding the same hostile fleet must not move the injection.
    const ItscsInput input = fleet_input(30, 40);
    const AdversaryInjector adversary(
        AdversarySpec::parse("collude=4,replay=2,seed=21"));
    std::unique_ptr<FleetResult> reference;
    for (const std::size_t shard_size : {6u, 15u, 30u}) {
        RuntimeConfig config;
        config.threads = 2;
        config.shard_size = shard_size;
        config.adversary = &adversary;
        FleetRunner runner(config);
        FleetResult fleet = runner.run(input, ItscsConfig{});
        if (reference == nullptr) {
            reference = std::make_unique<FleetResult>(std::move(fleet));
            continue;
        }
        EXPECT_EQ(fleet.adversary.colluders,
                  reference->adversary.colluders);
        EXPECT_TRUE(bitwise_equal(fleet.adversary.mask,
                                  reference->adversary.mask));
    }
}

TEST(FleetRunner, IdleAdversaryLeavesTheCleanPathBitIdentical) {
    const ItscsInput input = fleet_input(30, 40);
    RuntimeConfig plain;
    plain.threads = 2;
    plain.shard_size = 10;
    FleetRunner plain_runner(plain);
    const FleetResult want = plain_runner.run(input, ItscsConfig{});

    const AdversaryInjector idle(AdversarySpec::parse("seed=77"));
    RuntimeConfig config = plain;
    config.adversary = &idle;
    FleetRunner runner(config);
    const FleetResult got = runner.run(input, ItscsConfig{});
    EXPECT_TRUE(bitwise_equal(got.aggregate.detection,
                              want.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(got.aggregate.reconstructed_x,
                              want.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(got.aggregate.reconstructed_y,
                              want.aggregate.reconstructed_y));
}

// ---- Defence suite through the runtime seam ----------------------------

TEST(FleetRunner, DefendedRunIsBitIdenticalAcrossThreadCounts) {
    const ItscsInput input = fleet_input(30, 40);
    const AdversaryInjector adversary(
        AdversarySpec::parse("replay=2,collude=4,seed=21"));
    const DefenseSuite defense{DefenseSpec{}};

    std::unique_ptr<FleetResult> reference;
    std::vector<std::uint64_t> reference_counters;
    for (const std::size_t threads : {1u, 2u, 7u}) {
        RuntimeConfig config;
        config.threads = threads;
        config.shard_size = 10;
        config.adversary = &adversary;
        config.defense = &defense;
        FleetRunner runner(config);
        PipelineContext ctx;
        FleetResult fleet = runner.run(input, ItscsConfig{}, &ctx);

        // A replayed row is its victim circularly shifted — a bit-exact
        // duplicate the pairwise scan must catch at any thread count, and
        // one the re-test confirms outright.
        EXPECT_FALSE(fleet.defense.quarantined.empty());
        EXPECT_FALSE(fleet.defense.confirmed.empty());
        EXPECT_GT(ctx.counters().defense_trips, 0u);
        EXPECT_EQ(ctx.counters().participants_quarantined,
                  fleet.defense.quarantined.size());
        EXPECT_EQ(ctx.counters().quarantine_reinstated,
                  fleet.defense.reinstated.size());
        const std::vector<std::uint64_t> counters = {
            ctx.counters().defense_trips,
            ctx.counters().participants_quarantined,
            ctx.counters().quarantine_reinstated};

        if (reference == nullptr) {
            reference = std::make_unique<FleetResult>(std::move(fleet));
            reference_counters = counters;
            continue;
        }
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.detection,
                                  reference->aggregate.detection))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_x,
                                  reference->aggregate.reconstructed_x))
            << "threads=" << threads;
        EXPECT_TRUE(bitwise_equal(fleet.aggregate.reconstructed_y,
                                  reference->aggregate.reconstructed_y))
            << "threads=" << threads;
        EXPECT_EQ(fleet.defense.quarantined,
                  reference->defense.quarantined);
        EXPECT_EQ(fleet.defense.confirmed, reference->defense.confirmed);
        EXPECT_EQ(fleet.defense.reinstated,
                  reference->defense.reinstated);
        EXPECT_EQ(fleet.aggregate.quarantined,
                  reference->aggregate.quarantined);
        EXPECT_EQ(counters, reference_counters) << "threads=" << threads;
    }
}

TEST(FleetRunner, DefenseMustNotDependOnShardBoundaries) {
    // The defence runs fleet-wide before sharding: re-sharding the same
    // hostile fleet must not move a single quarantine decision.
    const ItscsInput input = fleet_input(30, 40);
    const AdversaryInjector adversary(
        AdversarySpec::parse("replay=2,collude=4,seed=21"));
    const DefenseSuite defense{DefenseSpec{}};
    std::unique_ptr<FleetResult> reference;
    for (const std::size_t shard_size : {6u, 15u, 30u}) {
        RuntimeConfig config;
        config.threads = 2;
        config.shard_size = shard_size;
        config.adversary = &adversary;
        config.defense = &defense;
        FleetRunner runner(config);
        FleetResult fleet = runner.run(input, ItscsConfig{});
        if (reference == nullptr) {
            reference = std::make_unique<FleetResult>(std::move(fleet));
            continue;
        }
        // Decisions only: the per-shard solve numerics legitimately vary
        // with the decomposition (each shard solves independently), but
        // the quarantine must not.
        EXPECT_EQ(fleet.defense.quarantined,
                  reference->defense.quarantined);
        EXPECT_EQ(fleet.defense.confirmed, reference->defense.confirmed);
        EXPECT_EQ(fleet.aggregate.quarantined,
                  reference->aggregate.quarantined);
    }
}

TEST(FleetRunner, IdleDefenseLeavesTheCleanPathBitIdentical) {
    const ItscsInput input = fleet_input(30, 40);
    RuntimeConfig plain;
    plain.threads = 2;
    plain.shard_size = 10;
    FleetRunner plain_runner(plain);
    const FleetResult want = plain_runner.run(input, ItscsConfig{});

    const DefenseSuite idle(
        DefenseSpec::parse("collusion=0,replay=0,outage=0"));
    RuntimeConfig config = plain;
    config.defense = &idle;
    FleetRunner runner(config);
    const FleetResult got = runner.run(input, ItscsConfig{});
    EXPECT_TRUE(got.defense.quarantined.empty());
    EXPECT_TRUE(bitwise_equal(got.aggregate.detection,
                              want.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(got.aggregate.reconstructed_x,
                              want.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(got.aggregate.reconstructed_y,
                              want.aggregate.reconstructed_y));
}

TEST(FleetRunner, ArmedDefenseOnACleanFleetQuarantinesNobody) {
    // Default (armed) defence on an honest fleet: no quarantine, and the
    // output stays bit-identical to a no-defence run — clean-path safety
    // of the whole ladder.
    const ItscsInput input = fleet_input(30, 40);
    RuntimeConfig plain;
    plain.threads = 2;
    plain.shard_size = 10;
    FleetRunner plain_runner(plain);
    const FleetResult want = plain_runner.run(input, ItscsConfig{});

    const DefenseSuite defense{DefenseSpec{}};
    RuntimeConfig config = plain;
    config.defense = &defense;
    FleetRunner runner(config);
    PipelineContext ctx;
    const FleetResult got = runner.run(input, ItscsConfig{}, &ctx);
    EXPECT_TRUE(got.defense.quarantined.empty());
    EXPECT_TRUE(got.defense.flags.empty());
    EXPECT_EQ(ctx.counters().participants_quarantined, 0u);
    EXPECT_TRUE(bitwise_equal(got.aggregate.detection,
                              want.aggregate.detection));
    EXPECT_TRUE(bitwise_equal(got.aggregate.reconstructed_x,
                              want.aggregate.reconstructed_x));
    EXPECT_TRUE(bitwise_equal(got.aggregate.reconstructed_y,
                              want.aggregate.reconstructed_y));
}

}  // namespace
}  // namespace mcs
