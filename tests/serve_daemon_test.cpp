// Tests for the streaming ingestion daemon (src/serve, DESIGN.md §15):
// wire codec round-trips, boundary validation, slotloss chaos, queue
// semantics, and the crash/replay contract — a daemon resumed from its
// ingest journal regenerates the uninterrupted run's reports bit-for-bit.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "corruption/adversary.hpp"
#include "corruption/chaos.hpp"
#include "corruption/scenario.hpp"
#include "serve/ingest_queue.hpp"
#include "serve/upload_codec.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

SlotUpload slot_of(const CorruptedDataset& data, std::size_t j) {
    const std::size_t n = data.participants();
    SlotUpload upload;
    upload.x.resize(n);
    upload.y.resize(n);
    upload.vx.resize(n);
    upload.vy.resize(n);
    upload.observed.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        upload.x[i] = data.sx(i, j);
        upload.y[i] = data.sy(i, j);
        upload.vx[i] = data.vx(i, j);
        upload.vy[i] = data.vy(i, j);
        upload.observed[i] = data.existence(i, j) != 0.0 ? 1 : 0;
    }
    return upload;
}

SlotUpload valid_upload(std::size_t n) {
    SlotUpload upload;
    upload.x.assign(n, 100.0);
    upload.y.assign(n, 200.0);
    upload.vx.assign(n, 1.0);
    upload.vy.assign(n, -1.0);
    upload.observed.assign(n, 1);
    return upload;
}

CorruptedDataset make_stream(std::uint64_t seed, std::size_t participants,
                             std::size_t slots) {
    const TraceDataset truth = make_small_dataset(seed, participants, slots);
    CorruptionConfig corruption;
    corruption.missing_ratio = 0.15;
    corruption.fault_ratio = 0.15;
    return corrupt(truth, corruption);
}

ServeConfig small_config(std::size_t participants) {
    ServeConfig config;
    config.participants = participants;
    config.window = 24;
    config.stride = 12;
    config.runtime.threads = 1;
    config.runtime.shard_count = 1;
    return config;
}

class JournalDir {
public:
    JournalDir() {
        dir_ = std::filesystem::temp_directory_path() /
               ("mcs_serve_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)));
        std::filesystem::create_directories(dir_);
    }
    ~JournalDir() {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    std::string journal() const { return (dir_ / "ingest.bin").string(); }

private:
    std::filesystem::path dir_;
};

// ---- Wire codec --------------------------------------------------------

TEST(UploadCodec, HeaderRoundTripsAndNamesMismatches) {
    StreamHeader header;
    header.participants = 12;
    header.tau_s = 30.0;
    header.window = 40;
    header.stride = 20;

    const auto payload = encode_stream_header(header);
    EXPECT_TRUE(is_stream_header(payload));
    EXPECT_FALSE(is_slot_upload(payload));
    const StreamHeader back = decode_stream_header(payload);
    EXPECT_TRUE(header.mismatch(back).empty());

    StreamHeader other = header;
    other.participants = 13;
    const std::string why = header.mismatch(other);
    EXPECT_NE(why.find("participants"), std::string::npos) << why;
}

TEST(UploadCodec, SlotRoundTripsBitExactly) {
    SlotUpload upload = valid_upload(3);
    upload.x[1] = -0.0;                 // sign bit must survive
    upload.x[2] = 1.0 + 1e-15;          // low mantissa bits must survive
    upload.vy[0] = 12345.6789e-7;
    upload.observed[2] = 0;
    upload.y[2] = std::numeric_limits<double>::quiet_NaN();  // unobserved

    const auto payload = encode_slot_upload(upload);
    EXPECT_TRUE(is_slot_upload(payload));
    EXPECT_FALSE(is_stream_header(payload));
    const SlotUpload back = decode_slot_upload(payload);
    ASSERT_EQ(back.x.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.x[i]),
                  std::bit_cast<std::uint64_t>(upload.x[i]));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.y[i]),
                  std::bit_cast<std::uint64_t>(upload.y[i]));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.vx[i]),
                  std::bit_cast<std::uint64_t>(upload.vx[i]));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.vy[i]),
                  std::bit_cast<std::uint64_t>(upload.vy[i]));
        EXPECT_EQ(back.observed[i], upload.observed[i]);
    }
    EXPECT_THROW(decode_stream_header(payload), Error);
    EXPECT_THROW(decode_slot_upload(encode_stream_header(StreamHeader{})),
                 Error);
}

// ---- Ingest queue ------------------------------------------------------

TEST(IngestQueue, DeliversInOrderUnderBackpressure) {
    IngestQueue queue(2);  // smaller than the number of pushes: producers
                           // must block and resume without losing order
    constexpr std::size_t kUploads = 16;
    std::thread producer([&] {
        for (std::size_t j = 0; j < kUploads; ++j) {
            SlotUpload upload = valid_upload(1);
            upload.x[0] = static_cast<double>(j);
            EXPECT_TRUE(queue.push(std::move(upload)));
        }
        queue.close();
    });
    std::size_t received = 0;
    while (auto upload = queue.pop()) {
        EXPECT_EQ(upload->x[0], static_cast<double>(received));
        ++received;
    }
    producer.join();
    EXPECT_EQ(received, kUploads);
    EXPECT_FALSE(queue.pop().has_value());      // stays drained
    EXPECT_FALSE(queue.push(valid_upload(1)));  // closed refuses pushes
}

// ---- Boundary validation (satellite of ItscsInput::validate) -----------

TEST(IngestDaemon, RejectsMalformedUploadsWithReports) {
    ServeConfig config = small_config(4);
    IngestDaemon daemon(config);
    daemon.start();

    SlotUpload wrong_size = valid_upload(4);
    wrong_size.vx.resize(3);
    daemon.submit(wrong_size);

    SlotUpload poisoned = valid_upload(4);
    poisoned.y[2] = std::numeric_limits<double>::quiet_NaN();
    daemon.submit(poisoned);

    // A non-finite value in an *unobserved* reading is acceptable — the
    // framework never reads that cell.
    SlotUpload unobserved = valid_upload(4);
    unobserved.observed[1] = 0;
    unobserved.x[1] = std::numeric_limits<double>::infinity();
    daemon.submit(unobserved);

    daemon.finish();
    const ServeStats stats = daemon.stats();
    EXPECT_EQ(stats.uploads_rejected, 2u);
    EXPECT_EQ(stats.uploads_accepted, 1u);

    const auto failures = daemon.drain_failures();
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0].kind, FailureKind::kRejectedUpload);
    EXPECT_EQ(failures[0].phase, "ingest");
    EXPECT_NE(failures[0].detail.find("do not match the fleet size"),
              std::string::npos)
        << failures[0].detail;
    EXPECT_EQ(failures[1].kind, FailureKind::kRejectedUpload);
    EXPECT_NE(failures[1].detail.find("non-finite at participant 2"),
              std::string::npos)
        << failures[1].detail;
}

// ---- Slotloss chaos ----------------------------------------------------

TEST(IngestDaemon, SlotLossReplacesEveryKthUpload) {
    ServeConfig config = small_config(4);
    config.slot_loss_every = 3;
    IngestDaemon daemon(config);
    daemon.start();
    for (std::size_t j = 0; j < 9; ++j) {
        daemon.submit(valid_upload(4));
    }
    daemon.finish();
    const ServeStats stats = daemon.stats();
    // Uploads 3, 6, 9 are lost in transit; their blank replacements are
    // still accepted so the slot clock keeps advancing.
    EXPECT_EQ(stats.slots_dropped, 3u);
    EXPECT_EQ(stats.uploads_accepted, 9u);
    EXPECT_EQ(stats.uploads_rejected, 0u);
}

TEST(IngestDaemon, SlotLossResolvesFromChaosGrammar) {
    const ChaosConfig chaos = ChaosConfig::parse("slotloss=4");
    EXPECT_EQ(chaos.slot_loss_every, 4u);
    const ChaosInjector injector(chaos);

    ServeConfig config = small_config(4);
    config.runtime.chaos = &injector;
    IngestDaemon daemon(config);
    daemon.start();
    for (std::size_t j = 0; j < 8; ++j) {
        daemon.submit(valid_upload(4));
    }
    daemon.finish();
    EXPECT_EQ(daemon.stats().slots_dropped, 2u);

    // An explicit slot_loss_every wins over the chaos spec.
    ServeConfig explicit_config = small_config(4);
    explicit_config.runtime.chaos = &injector;
    explicit_config.slot_loss_every = 2;
    IngestDaemon explicit_daemon(explicit_config);
    explicit_daemon.start();
    for (std::size_t j = 0; j < 8; ++j) {
        explicit_daemon.submit(valid_upload(4));
    }
    explicit_daemon.finish();
    EXPECT_EQ(explicit_daemon.stats().slots_dropped, 4u);
}

// ---- Streaming evaluation through the fleet runner ---------------------

TEST(IngestDaemon, EvaluatesWindowsAndFlushesPartialTail) {
    const CorruptedDataset data = make_stream(11, 10, 60);
    ServeConfig config = small_config(10);
    config.tau_s = data.tau_s;
    IngestDaemon daemon(config);
    daemon.start();
    for (std::size_t j = 0; j < 60; ++j) {
        daemon.submit(slot_of(data, j));
    }
    daemon.finish();

    // Window 24, stride 12 over 60 slots: boundaries at 24, 36, 48, 60 —
    // everything is covered, so finish() has no tail to flush.
    const auto reports = daemon.drain();
    ASSERT_EQ(reports.size(), 4u);
    EXPECT_EQ(daemon.stats().windows_evaluated, 4u);
    for (std::size_t k = 0; k < reports.size(); ++k) {
        EXPECT_EQ(reports[k].first_slot, k * 12);
        EXPECT_EQ(reports[k].detection.rows(), 10u);
        EXPECT_EQ(reports[k].detection.cols(), 24u);
    }
    // Windows 2..4 ran with a warm seed carried from their predecessor.
    EXPECT_EQ(daemon.stats().windows_warm, 3u);

    // 6 extra slots leave an uncovered tail; finish() evaluates the last
    // (full-width) buffer once more.
    IngestDaemon tail_daemon(config);
    tail_daemon.start();
    for (std::size_t j = 0; j < 54; ++j) {
        tail_daemon.submit(slot_of(data, j));
    }
    tail_daemon.finish();
    const auto tail_reports = tail_daemon.drain();
    ASSERT_EQ(tail_reports.size(), 4u);  // 24, 36, 48 + flushed tail
    EXPECT_EQ(tail_reports.back().first_slot, 30u);
    EXPECT_EQ(tail_reports.back().detection.cols(), 24u);
}

// ---- Warm-start verification gate --------------------------------------

TEST(IngestDaemon, WarmVerificationGateResetsOnImpossibleTolerance) {
    const CorruptedDataset data = make_stream(5, 10, 48);
    ServeConfig config = small_config(10);
    config.tau_s = data.tau_s;
    config.warm_verify_every = 1;
    // An unreachable tolerance forces every verified warm window to adopt
    // the cold reference — the gate's fail-safe path.
    config.warm_verify_tolerance = 1e-15;
    IngestDaemon daemon(config);
    daemon.start();
    for (std::size_t j = 0; j < 48; ++j) {
        daemon.submit(slot_of(data, j));
    }
    daemon.finish();
    const auto reports = daemon.drain();
    ASSERT_EQ(reports.size(), 3u);
    const ServeStats stats = daemon.stats();
    EXPECT_GE(stats.warm_resets, 1u);
    bool saw_verified = false;
    for (const auto& report : reports) {
        if (report.warm_verified) {
            saw_verified = true;
            EXPECT_GE(report.warm_deviation, 0.0);
        }
    }
    EXPECT_TRUE(saw_verified);

    // A generous tolerance keeps every warm window.
    config.warm_verify_tolerance = 1e9;
    IngestDaemon lenient(config);
    lenient.start();
    for (std::size_t j = 0; j < 48; ++j) {
        lenient.submit(slot_of(data, j));
    }
    lenient.finish();
    EXPECT_EQ(lenient.stats().warm_resets, 0u);
}

// ---- Journal replay / crash recovery -----------------------------------

// Kill a daemon mid-window, resume a fresh one from its journal, feed the
// rest of the stream: the resumed daemon's full report sequence must be
// bit-identical to an uninterrupted run's.
TEST(IngestDaemon, JournalReplayReproducesUninterruptedRun) {
    const std::size_t kSlots = 60;
    const std::size_t kCrashAt = 31;  // mid-window: 24 evaluated, 7 buffered
    const CorruptedDataset data = make_stream(23, 10, kSlots);

    ServeConfig config = small_config(10);
    config.tau_s = data.tau_s;
    config.flush_tail = false;

    // Reference: one uninterrupted daemon over the whole stream.
    std::vector<WindowReport> want;
    {
        IngestDaemon daemon(config);
        daemon.start();
        for (std::size_t j = 0; j < kSlots; ++j) {
            daemon.submit(slot_of(data, j));
        }
        daemon.finish();
        want = daemon.drain();
    }
    ASSERT_EQ(want.size(), 4u);

    JournalDir dir;
    ServeConfig journaled = config;
    journaled.journal_path = dir.journal();
    {
        IngestDaemon daemon(journaled);
        daemon.start();
        for (std::size_t j = 0; j < kCrashAt; ++j) {
            daemon.submit(slot_of(data, j));
        }
        daemon.finish();  // simulated kill: journal survives, process ends
    }

    ServeConfig resumed = journaled;
    resumed.resume = true;
    IngestDaemon daemon(resumed);
    daemon.start();
    EXPECT_EQ(daemon.stats().slots_replayed, kCrashAt);
    for (std::size_t j = kCrashAt; j < kSlots; ++j) {
        daemon.submit(slot_of(data, j));
    }
    daemon.finish();

    const auto got = daemon.drain();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
        EXPECT_EQ(got[k].first_slot, want[k].first_slot);
        EXPECT_EQ(got[k].iterations, want[k].iterations);
        EXPECT_EQ(got[k].converged, want[k].converged);
        ASSERT_EQ(got[k].detection.rows(), want[k].detection.rows());
        ASSERT_EQ(got[k].detection.cols(), want[k].detection.cols());
        const auto got_cells = got[k].detection.data();
        const auto want_cells = want[k].detection.data();
        for (std::size_t c = 0; c < got_cells.size(); ++c) {
            ASSERT_EQ(got_cells[c], want_cells[c])
                << "window " << k << " cell " << c;
        }
        const auto got_x = got[k].reconstructed_x.data();
        const auto want_x = want[k].reconstructed_x.data();
        for (std::size_t c = 0; c < got_x.size(); ++c) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(got_x[c]),
                      std::bit_cast<std::uint64_t>(want_x[c]))
                << "window " << k << " cell " << c;
        }
    }
}

TEST(IngestDaemon, AdversarialStreamReplaysBitIdenticallyAfterResume) {
    // The adversary acts client-side: colluded and replayed rows arrive
    // through the normal ingest path as valid-looking uploads, so the
    // daemon journals them like any other reading — and a crash/resume
    // must reproduce the hostile run's reports bit for bit.
    const std::size_t kSlots = 60;
    const std::size_t kCrashAt = 29;
    CorruptedDataset data = make_stream(31, 10, kSlots);
    const AdversaryInjector adversary(
        AdversarySpec::parse("collude=2,replay=1,seed=17"));
    adversary.apply(data.sx, data.sy, data.vx, data.vy, data.existence,
                    data.tau_s, &data.fault);

    ServeConfig config = small_config(10);
    config.tau_s = data.tau_s;
    config.flush_tail = false;

    std::vector<WindowReport> want;
    {
        IngestDaemon daemon(config);
        daemon.start();
        for (std::size_t j = 0; j < kSlots; ++j) {
            daemon.submit(slot_of(data, j));
        }
        daemon.finish();
        want = daemon.drain();
    }
    ASSERT_FALSE(want.empty());

    JournalDir dir;
    ServeConfig journaled = config;
    journaled.journal_path = dir.journal();
    {
        IngestDaemon daemon(journaled);
        daemon.start();
        for (std::size_t j = 0; j < kCrashAt; ++j) {
            daemon.submit(slot_of(data, j));
        }
        daemon.finish();  // simulated kill mid-window
    }

    ServeConfig resumed = journaled;
    resumed.resume = true;
    IngestDaemon daemon(resumed);
    daemon.start();
    EXPECT_EQ(daemon.stats().slots_replayed, kCrashAt);
    for (std::size_t j = kCrashAt; j < kSlots; ++j) {
        daemon.submit(slot_of(data, j));
    }
    daemon.finish();

    const auto got = daemon.drain();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
        EXPECT_EQ(got[k].first_slot, want[k].first_slot);
        const auto got_cells = got[k].detection.data();
        const auto want_cells = want[k].detection.data();
        ASSERT_EQ(got_cells.size(), want_cells.size());
        for (std::size_t c = 0; c < got_cells.size(); ++c) {
            ASSERT_EQ(got_cells[c], want_cells[c])
                << "window " << k << " cell " << c;
        }
        const auto got_x = got[k].reconstructed_x.data();
        const auto want_x = want[k].reconstructed_x.data();
        for (std::size_t c = 0; c < got_x.size(); ++c) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(got_x[c]),
                      std::bit_cast<std::uint64_t>(want_x[c]))
                << "window " << k << " cell " << c;
        }
    }
}

TEST(IngestDaemon, QuarantineEnforcementSurvivesResumeBitIdentically) {
    // A fraudster mirrors another participant's live uploads slot for
    // slot — an exact duplicate the defence's replay scan catches in the
    // first evaluated window. From then on the daemon refuses the
    // fraudster's readings at the ingest boundary, and because
    // enforcement runs *before* the journal append, a killed daemon
    // resumes to the same sticky quarantine and bit-identical windows.
    const std::size_t kSlots = 60;
    const std::size_t kCrashAt = 29;  // first window (24) evaluated
    const std::size_t kVictim = 3;
    const std::size_t kFraud = 7;
    CorruptedDataset data = make_stream(31, 10, kSlots);
    for (std::size_t j = 0; j < kSlots; ++j) {
        data.sx(kFraud, j) = data.sx(kVictim, j);
        data.sy(kFraud, j) = data.sy(kVictim, j);
        data.vx(kFraud, j) = data.vx(kVictim, j);
        data.vy(kFraud, j) = data.vy(kVictim, j);
        data.existence(kFraud, j) = data.existence(kVictim, j);
    }

    const DefenseSuite defense{DefenseSpec{}};
    ServeConfig config = small_config(10);
    config.tau_s = data.tau_s;
    config.flush_tail = false;
    config.runtime.defense = &defense;

    std::vector<WindowReport> want;
    std::vector<std::size_t> want_quarantined;
    ServeStats want_stats;
    {
        IngestDaemon daemon(config);
        daemon.start();
        for (std::size_t j = 0; j < kSlots; ++j) {
            daemon.submit(slot_of(data, j));
        }
        daemon.finish();
        want = daemon.drain();
        want_quarantined = daemon.quarantined();
        want_stats = daemon.stats();
        const auto failures = daemon.drain_failures();
        const bool enforced = std::any_of(
            failures.begin(), failures.end(), [](const FailureReport& f) {
                return f.kind == FailureKind::kRejectedUpload &&
                       f.phase == "quarantine";
            });
        EXPECT_TRUE(enforced);
    }
    ASSERT_EQ(want_quarantined, std::vector<std::size_t>{kFraud});
    EXPECT_EQ(want_stats.participants_quarantined, 1u);
    EXPECT_GT(want_stats.readings_quarantined, 0u);

    JournalDir dir;
    ServeConfig journaled = config;
    journaled.journal_path = dir.journal();
    {
        IngestDaemon daemon(journaled);
        daemon.start();
        for (std::size_t j = 0; j < kCrashAt; ++j) {
            daemon.submit(slot_of(data, j));
        }
        daemon.finish();  // simulated kill mid-window
    }

    ServeConfig resumed = journaled;
    resumed.resume = true;
    IngestDaemon daemon(resumed);
    daemon.start();
    // The replayed journal holds the *enforced* stream: the sticky
    // quarantine is rebuilt from the re-evaluated windows, not
    // re-enforced per reading.
    EXPECT_EQ(daemon.stats().slots_replayed, kCrashAt);
    EXPECT_EQ(daemon.quarantined(), want_quarantined);
    for (std::size_t j = kCrashAt; j < kSlots; ++j) {
        daemon.submit(slot_of(data, j));
    }
    daemon.finish();

    EXPECT_EQ(daemon.quarantined(), want_quarantined);
    const ServeStats stats = daemon.stats();
    EXPECT_EQ(stats.participants_quarantined,
              want_stats.participants_quarantined);
    // Slots enforced before the crash live in the journal as dark cells,
    // so the resumed run only re-enforces the live tail.
    EXPECT_GT(stats.readings_quarantined, 0u);
    EXPECT_LE(stats.readings_quarantined, want_stats.readings_quarantined);

    const auto got = daemon.drain();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
        EXPECT_EQ(got[k].first_slot, want[k].first_slot);
        EXPECT_EQ(got[k].quarantined, want[k].quarantined);
        const auto got_cells = got[k].detection.data();
        const auto want_cells = want[k].detection.data();
        ASSERT_EQ(got_cells.size(), want_cells.size());
        for (std::size_t c = 0; c < got_cells.size(); ++c) {
            ASSERT_EQ(got_cells[c], want_cells[c])
                << "window " << k << " cell " << c;
        }
        const auto got_x = got[k].reconstructed_x.data();
        const auto want_x = want[k].reconstructed_x.data();
        for (std::size_t c = 0; c < got_x.size(); ++c) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(got_x[c]),
                      std::bit_cast<std::uint64_t>(want_x[c]))
                << "window " << k << " cell " << c;
        }
    }
}

TEST(IngestDaemon, ResumeRefusesMismatchedStream) {
    JournalDir dir;
    ServeConfig config = small_config(6);
    config.journal_path = dir.journal();
    {
        IngestDaemon daemon(config);
        daemon.start();
        daemon.submit(valid_upload(6));
        daemon.finish();
    }
    ServeConfig wrong = small_config(7);
    wrong.journal_path = dir.journal();
    wrong.resume = true;
    IngestDaemon daemon(wrong);
    EXPECT_THROW(daemon.start(), Error);
}

TEST(IngestDaemon, ResumeSurvivesCorruptFrames) {
    JournalDir dir;
    ServeConfig config = small_config(4);
    config.journal_path = dir.journal();
    {
        IngestDaemon daemon(config);
        daemon.start();
        for (std::size_t j = 0; j < 6; ++j) {
            SlotUpload upload = valid_upload(4);
            upload.x[0] = static_cast<double>(j);
            daemon.submit(upload);
        }
        daemon.finish();
    }

    // Flip a byte in the middle of the file: one frame's CRC breaks, the
    // scan drops it, and the replay continues past it.
    {
        std::fstream file(dir.journal(),
                          std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(file.is_open());
        file.seekg(0, std::ios::end);
        const auto size = static_cast<std::size_t>(file.tellg());
        file.seekg(static_cast<std::streamoff>(size / 2));
        char byte = 0;
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);  // guaranteed different
        file.seekp(static_cast<std::streamoff>(size / 2));
        file.write(&byte, 1);
    }

    ServeConfig resumed = config;
    resumed.resume = true;
    IngestDaemon daemon(resumed);
    daemon.start();
    const ServeStats stats = daemon.stats();
    EXPECT_GE(stats.journal_corrupt_frames, 1u);
    EXPECT_LT(stats.slots_replayed, 6u);
    const auto failures = daemon.drain_failures();
    ASSERT_FALSE(failures.empty());
    EXPECT_EQ(failures[0].kind, FailureKind::kCheckpointCorrupt);
    EXPECT_EQ(failures[0].phase, "ingest_journal");
    daemon.finish();

    // The compacted journal resumes cleanly a second time.
    IngestDaemon again(resumed);
    again.start();
    EXPECT_EQ(again.stats().journal_corrupt_frames, 0u);
    again.finish();
}

TEST(IngestDaemon, ConfigValidation) {
    ServeConfig config;  // participants == 0
    EXPECT_THROW(IngestDaemon{config}, Error);

    config = small_config(4);
    config.runtime.checkpoint_dir = "/tmp/somewhere";
    EXPECT_THROW(IngestDaemon{config}, Error);

    config = small_config(4);
    config.resume = true;  // resume without a journal
    EXPECT_THROW(IngestDaemon{config}, Error);
}

}  // namespace
}  // namespace mcs
