// Round-trip tests for the trace CSV import/export.
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "corruption/existence.hpp"
#include "linalg/ops.hpp"
#include "trace/simulator.hpp"

namespace mcs {
namespace {

TEST(TraceIo, FullRoundTrip) {
    const TraceDataset ds = make_small_dataset(1, 6, 20);
    std::ostringstream out;
    write_trace_csv(out, ds);
    std::istringstream in(out.str());
    const ImportedTrace imported = read_trace_csv(in, 6, 20, ds.tau_s);
    EXPECT_TRUE(approx_equal(imported.dataset.x, ds.x, 1e-3));
    EXPECT_TRUE(approx_equal(imported.dataset.y, ds.y, 1e-3));
    EXPECT_TRUE(approx_equal(imported.dataset.vx, ds.vx, 1e-3));
    EXPECT_EQ(count_equal(imported.existence, 1.0), 6u * 20u);
}

TEST(TraceIo, MaskedExportSkipsMissing) {
    const TraceDataset ds = make_small_dataset(2, 5, 15);
    Rng rng(9);
    const Matrix mask = make_existence_mask(5, 15, 0.4, rng);
    std::ostringstream out;
    write_trace_csv(out, ds, mask);
    std::istringstream in(out.str());
    const ImportedTrace imported = read_trace_csv(in, 5, 15, ds.tau_s);
    EXPECT_TRUE(imported.existence == mask);
    // Missing cells must be zero after import.
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 15; ++j) {
            if (mask(i, j) == 0.0) {
                EXPECT_DOUBLE_EQ(imported.dataset.x(i, j), 0.0);
            }
        }
    }
}

TEST(TraceIo, HeaderIsStable) {
    const TraceDataset ds = make_small_dataset(3, 2, 5);
    std::ostringstream out;
    write_trace_csv(out, ds);
    EXPECT_EQ(out.str().substr(0, 42),
              "participant,slot,x_m,y_m,vx_mps,vy_mps\n0,0");
}

TEST(TraceIo, RejectsOutOfRangeRecords) {
    std::istringstream in(
        "participant,slot,x_m,y_m,vx_mps,vy_mps\n9,0,1,2,3,4\n");
    EXPECT_THROW(read_trace_csv(in, 5, 15, 30.0), Error);
    std::istringstream in2(
        "participant,slot,x_m,y_m,vx_mps,vy_mps\n0,99,1,2,3,4\n");
    EXPECT_THROW(read_trace_csv(in2, 5, 15, 30.0), Error);
}

TEST(TraceIo, RejectsDuplicateCells) {
    std::istringstream in(
        "participant,slot,x_m,y_m,vx_mps,vy_mps\n"
        "0,0,1,2,3,4\n0,0,5,6,7,8\n");
    EXPECT_THROW(read_trace_csv(in, 2, 2, 30.0), Error);
}

TEST(TraceIo, RejectsMissingColumns) {
    std::istringstream in("participant,slot,x_m\n0,0,1\n");
    EXPECT_THROW(read_trace_csv(in, 2, 2, 30.0), Error);
}

TEST(TraceIo, RejectsMalformedNumbers) {
    std::istringstream in(
        "participant,slot,x_m,y_m,vx_mps,vy_mps\n0,0,abc,2,3,4\n");
    EXPECT_THROW(read_trace_csv(in, 2, 2, 30.0), Error);
}

TEST(TraceIo, FileRoundTrip) {
    const TraceDataset ds = make_small_dataset(4, 3, 8);
    const std::string path = "/tmp/mcs_trace_io_test.csv";
    write_trace_csv_file(path, ds,
                         Matrix::constant(ds.participants(), ds.slots(), 1.0));
    const ImportedTrace imported = read_trace_csv_file(path, 3, 8, ds.tau_s);
    EXPECT_TRUE(approx_equal(imported.dataset.y, ds.y, 1e-3));
}

}  // namespace
}  // namespace mcs
