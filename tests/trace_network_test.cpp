// Unit tests for the road network and the router.
#include "trace/road_network.hpp"
#include "trace/router.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace mcs {
namespace {

RoadNetworkConfig small_config() {
    RoadNetworkConfig config;
    config.width_m = 5000.0;
    config.height_m = 4000.0;
    config.block_m = 1000.0;
    config.arterial_every = 2;
    return config;
}

TEST(RoadNetwork, GridDimensions) {
    const RoadNetwork net(small_config());
    EXPECT_EQ(net.grid_width(), 6u);   // 0..5000 in 1000 m steps
    EXPECT_EQ(net.grid_height(), 5u);  // 0..4000
    EXPECT_EQ(net.num_nodes(), 30u);
}

TEST(RoadNetwork, NodePositions) {
    const RoadNetwork net(small_config());
    const NodeId node = net.node_at(2, 3);
    const LocalPoint p = net.position(node);
    EXPECT_DOUBLE_EQ(p.x_m, 2000.0);
    EXPECT_DOUBLE_EQ(p.y_m, 3000.0);
    EXPECT_EQ(net.node_ix(node), 2u);
    EXPECT_EQ(net.node_iy(node), 3u);
}

TEST(RoadNetwork, CornerNodesHaveTwoNeighbours) {
    const RoadNetwork net(small_config());
    EXPECT_EQ(net.neighbours(net.node_at(0, 0)).size(), 2u);
    EXPECT_EQ(net.neighbours(net.node_at(5, 4)).size(), 2u);
}

TEST(RoadNetwork, InteriorNodesHaveFourNeighbours) {
    const RoadNetwork net(small_config());
    const auto nbrs = net.neighbours(net.node_at(2, 2));
    EXPECT_EQ(nbrs.size(), 4u);
    const std::set<NodeId> unique(nbrs.begin(), nbrs.end());
    EXPECT_EQ(unique.size(), 4u);
}

TEST(RoadNetwork, ArterialClassification) {
    const RoadNetwork net(small_config());  // every 2nd line arterial
    // Horizontal edge on row 0 (arterial line).
    EXPECT_EQ(net.edge_class(net.node_at(0, 0), net.node_at(1, 0)),
              RoadClass::kArterial);
    // Horizontal edge on row 1 (local line).
    EXPECT_EQ(net.edge_class(net.node_at(0, 1), net.node_at(1, 1)),
              RoadClass::kLocal);
    // Vertical edge on column 2 (arterial).
    EXPECT_EQ(net.edge_class(net.node_at(2, 0), net.node_at(2, 1)),
              RoadClass::kArterial);
    // Vertical edge on column 3 (local).
    EXPECT_EQ(net.edge_class(net.node_at(3, 0), net.node_at(3, 1)),
              RoadClass::kLocal);
}

TEST(RoadNetwork, EdgeSpeedsMatchClass) {
    const auto config = small_config();
    const RoadNetwork net(config);
    EXPECT_DOUBLE_EQ(net.edge_speed_mps(net.node_at(0, 0), net.node_at(1, 0)),
                     config.arterial_speed_mps);
    EXPECT_DOUBLE_EQ(net.edge_speed_mps(net.node_at(0, 1), net.node_at(1, 1)),
                     config.local_speed_mps);
}

TEST(RoadNetwork, NonAdjacentEdgeThrows) {
    const RoadNetwork net(small_config());
    EXPECT_THROW(net.edge_class(net.node_at(0, 0), net.node_at(2, 0)), Error);
    EXPECT_THROW(net.edge_class(net.node_at(0, 0), net.node_at(1, 1)), Error);
    EXPECT_THROW(net.edge_class(net.node_at(0, 0), net.node_at(0, 0)), Error);
}

TEST(RoadNetwork, NearestNodeClampsToGrid) {
    const RoadNetwork net(small_config());
    EXPECT_EQ(net.nearest_node({-500.0, -500.0}), net.node_at(0, 0));
    EXPECT_EQ(net.nearest_node({1e9, 1e9}), net.node_at(5, 4));
    EXPECT_EQ(net.nearest_node({1499.0, 2501.0}), net.node_at(1, 3));
}

TEST(RoadNetwork, InvalidConfigRejected) {
    RoadNetworkConfig config = small_config();
    config.block_m = 0.0;
    EXPECT_THROW(RoadNetwork{config}, Error);
    config = small_config();
    config.arterial_every = 0;
    EXPECT_THROW(RoadNetwork{config}, Error);
    config = small_config();
    config.local_speed_mps = -1.0;
    EXPECT_THROW(RoadNetwork{config}, Error);
}

TEST(Router, TrivialRoute) {
    const RoadNetwork net(small_config());
    const Router router(net);
    const Route r = router.route(3, 3);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], 3u);
}

TEST(Router, RouteEndpointsAndAdjacency) {
    const RoadNetwork net(small_config());
    const Router router(net);
    const NodeId from = net.node_at(0, 0);
    const NodeId to = net.node_at(5, 4);
    const Route r = router.route(from, to);
    ASSERT_GE(r.size(), 2u);
    EXPECT_EQ(r.front(), from);
    EXPECT_EQ(r.back(), to);
    for (std::size_t i = 1; i < r.size(); ++i) {
        // Throws if not adjacent.
        EXPECT_NO_THROW(net.edge_class(r[i - 1], r[i]));
    }
}

TEST(Router, ManhattanLengthIsMinimal) {
    // On a uniform grid the route length is exactly the Manhattan distance.
    const RoadNetwork net(small_config());
    const Router router(net);
    const Route r = router.route(net.node_at(1, 1), net.node_at(4, 3));
    EXPECT_DOUBLE_EQ(router.length_m(r), 5000.0);  // 3 + 2 blocks
}

TEST(Router, PrefersFasterArterials) {
    // With arterials twice as fast, the fastest path detours onto them
    // whenever the detour is short enough; the route time must never
    // exceed the all-local-road time of the direct path.
    const auto config = small_config();
    const RoadNetwork net(config);
    const Router router(net);
    const Route r = router.route(net.node_at(0, 1), net.node_at(5, 1));
    const double direct_local_time = 5000.0 / config.local_speed_mps;
    EXPECT_LE(router.travel_time_s(r) , direct_local_time + 1e-9);
}

TEST(Router, TravelTimeConsistentWithLength) {
    const auto config = small_config();
    const RoadNetwork net(config);
    const Router router(net);
    const Route r = router.route(net.node_at(0, 0), net.node_at(3, 2));
    const double time = router.travel_time_s(r);
    const double length = router.length_m(r);
    // Time must be between length/fastest and length/slowest.
    EXPECT_GE(time, length / config.arterial_speed_mps - 1e-9);
    EXPECT_LE(time, length / config.local_speed_mps + 1e-9);
}

TEST(Router, InvalidNodesRejected) {
    const RoadNetwork net(small_config());
    const Router router(net);
    EXPECT_THROW(router.route(0, static_cast<NodeId>(net.num_nodes())),
                 Error);
}

// Property: routes between random node pairs are valid paths with length
// >= Euclidean distance.
class RouterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterProperty, RandomPairsProduceValidPaths) {
    const RoadNetwork net(small_config());
    const Router router(net);
    const NodeId from = static_cast<NodeId>(GetParam() % net.num_nodes());
    const NodeId to =
        static_cast<NodeId>((GetParam() * 7 + 3) % net.num_nodes());
    const Route r = router.route(from, to);
    EXPECT_EQ(r.front(), from);
    EXPECT_EQ(r.back(), to);
    EXPECT_GE(router.length_m(r), net.euclidean_m(from, to) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, RouterProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace mcs
