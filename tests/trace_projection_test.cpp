// Unit tests for the equirectangular projection.
#include "trace/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcs {
namespace {

TEST(Projection, ReferenceMapsToOrigin) {
    const Projection proj;
    const LocalPoint p = proj.to_local(proj.reference());
    EXPECT_NEAR(p.x_m, 0.0, 1e-9);
    EXPECT_NEAR(p.y_m, 0.0, 1e-9);
}

TEST(Projection, RoundTrip) {
    const Projection proj;
    const GeoPoint g{31.30, 121.55};
    const GeoPoint back = proj.to_geo(proj.to_local(g));
    EXPECT_NEAR(back.latitude_deg, g.latitude_deg, 1e-12);
    EXPECT_NEAR(back.longitude_deg, g.longitude_deg, 1e-12);
}

TEST(Projection, OneDegreeLatitudeIsAbout111Km) {
    const Projection proj;
    const LocalPoint p =
        proj.to_local({proj.reference().latitude_deg + 1.0,
                       proj.reference().longitude_deg});
    EXPECT_NEAR(p.y_m, 111194.0, 100.0);
    EXPECT_NEAR(p.x_m, 0.0, 1e-9);
}

TEST(Projection, LongitudeShrinksWithLatitude) {
    // At 31°N, a degree of longitude is ~cos(31°) of a degree of latitude.
    const Projection proj;
    const LocalPoint p =
        proj.to_local({proj.reference().latitude_deg,
                       proj.reference().longitude_deg + 1.0});
    const double expected = 111194.0 * std::cos(31.23 * M_PI / 180.0);
    EXPECT_NEAR(p.x_m, expected, 200.0);
}

TEST(Projection, CustomReference) {
    const Projection proj(GeoPoint{0.0, 0.0});  // equator: square grid
    const LocalPoint lat = proj.to_local({1.0, 0.0});
    const LocalPoint lon = proj.to_local({0.0, 1.0});
    EXPECT_NEAR(lat.y_m, lon.x_m, 1.0);
}

TEST(Projection, DistanceIsEuclidean) {
    EXPECT_DOUBLE_EQ(Projection::distance_m({0.0, 0.0}, {3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(Projection::distance_m({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(Projection, DistanceSymmetry) {
    const LocalPoint a{10.0, -20.0};
    const LocalPoint b{-5.0, 7.0};
    EXPECT_DOUBLE_EQ(Projection::distance_m(a, b),
                     Projection::distance_m(b, a));
}

}  // namespace
}  // namespace mcs
