// Tests for the fleet simulator and the dataset-level statistics the
// I(TS,CS) algorithm relies on (the paper's Fig. 4 properties).
#include "trace/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "linalg/stats.hpp"
#include "trace/trace_stats.hpp"

namespace mcs {
namespace {

TEST(Simulator, ShapesAndValidation) {
    const TraceDataset ds = make_small_dataset(1, 10, 50);
    EXPECT_EQ(ds.participants(), 10u);
    EXPECT_EQ(ds.slots(), 50u);
    EXPECT_NO_THROW(ds.validate());
    EXPECT_DOUBLE_EQ(ds.tau_s, 30.0);
}

TEST(Simulator, DeterministicForSameSeed) {
    const TraceDataset a = make_small_dataset(7, 5, 30);
    const TraceDataset b = make_small_dataset(7, 5, 30);
    EXPECT_TRUE(a.x == b.x);
    EXPECT_TRUE(a.y == b.y);
    EXPECT_TRUE(a.vx == b.vx);
}

TEST(Simulator, DifferentSeedsDiffer) {
    const TraceDataset a = make_small_dataset(1, 5, 30);
    const TraceDataset b = make_small_dataset(2, 5, 30);
    EXPECT_FALSE(a.x == b.x);
}

TEST(Simulator, PositionsInsideNetwork) {
    SimulatorConfig config;
    config.participants = 8;
    config.slots = 40;
    config.network.width_m = 15000.0;
    config.network.height_m = 12000.0;
    const TraceDataset ds = simulate_fleet(config);
    for (std::size_t i = 0; i < ds.participants(); ++i) {
        for (std::size_t j = 0; j < ds.slots(); ++j) {
            EXPECT_GE(ds.x(i, j), -1e-6);
            EXPECT_LE(ds.x(i, j), config.network.width_m + 1e-6);
            EXPECT_GE(ds.y(i, j), -1e-6);
            EXPECT_LE(ds.y(i, j), config.network.height_m + 1e-6);
        }
    }
}

TEST(Simulator, SpeedsBounded) {
    SimulatorConfig config;
    config.participants = 6;
    config.slots = 60;
    config.network.width_m = 20000.0;
    config.network.height_m = 20000.0;
    const TraceDataset ds = simulate_fleet(config);
    const double cap = config.network.arterial_speed_mps *
                       config.max_speed_factor;
    for (std::size_t i = 0; i < ds.participants(); ++i) {
        for (std::size_t j = 0; j < ds.slots(); ++j) {
            const double speed = std::hypot(ds.vx(i, j), ds.vy(i, j));
            EXPECT_LE(speed, cap + 1e-6);
        }
    }
}

TEST(Simulator, VehiclesActuallyMove) {
    const TraceDataset ds = make_small_dataset(3, 10, 60);
    std::size_t moving_rows = 0;
    for (std::size_t i = 0; i < ds.participants(); ++i) {
        double travelled = 0.0;
        for (std::size_t j = 1; j < ds.slots(); ++j) {
            travelled += std::hypot(ds.x(i, j) - ds.x(i, j - 1),
                                    ds.y(i, j) - ds.y(i, j - 1));
        }
        if (travelled > 1000.0) {
            ++moving_rows;
        }
    }
    // At least 70% of taxis cover more than a kilometre in half an hour.
    EXPECT_GE(moving_rows, ds.participants() * 7 / 10);
}

TEST(Simulator, DisplacementMatchesVelocityClosely) {
    // The velocity-improved temporal deltas (Eq. 22) must be much smaller
    // than the raw deltas (Eq. 21) — Fig. 4(b)'s headline property.
    const TraceDataset ds = make_small_dataset(5, 20, 80);
    const auto qx = delta_quantiles(ds.x, ds.vx, ds.tau_s, 0.95);
    EXPECT_LT(qx.velocity_improved, 0.6 * qx.plain);
}

TEST(Simulator, CoordinateMatricesAreApproximatelyLowRank) {
    // Fig. 4(a): a small fraction of singular values carries most energy.
    const TraceDataset ds = make_small_dataset(6, 30, 100);
    const SingularEnergyCurve curve = singular_energy_curve(ds.x);
    EXPECT_LE(energy_fraction_needed(curve, 0.95), 0.5);
    // The energy curve is a CDF: monotone, ending at 1.
    EXPECT_NEAR(curve.cumulative_energy.back(), 1.0, 1e-9);
    for (std::size_t i = 1; i < curve.cumulative_energy.size(); ++i) {
        EXPECT_GE(curve.cumulative_energy[i],
                  curve.cumulative_energy[i - 1] - 1e-12);
    }
}

TEST(Simulator, InvalidConfigRejected) {
    SimulatorConfig config;
    config.participants = 0;
    EXPECT_THROW(simulate_fleet(config), Error);
    config = SimulatorConfig{};
    config.slots = 0;
    EXPECT_THROW(simulate_fleet(config), Error);
    config = SimulatorConfig{};
    config.integration_step_s = 60.0;  // > tau
    EXPECT_THROW(simulate_fleet(config), Error);
    config = SimulatorConfig{};
    config.min_speed_factor = 1.5;
    config.max_speed_factor = 1.0;
    EXPECT_THROW(simulate_fleet(config), Error);
}

TEST(TraceStats, TemporalDeltasCountAndNonNegativity) {
    const TraceDataset ds = make_small_dataset(2, 4, 25);
    const auto deltas = temporal_deltas(ds.x);
    EXPECT_EQ(deltas.size(), 4u * 24u);
    for (const double d : deltas) {
        EXPECT_GE(d, 0.0);
    }
}

TEST(TraceStats, VelocityImprovedDeltasShapeChecked) {
    const TraceDataset ds = make_small_dataset(2, 4, 25);
    const Matrix avg = average_velocity(ds.vx);
    EXPECT_NO_THROW(velocity_improved_deltas(ds.x, avg, ds.tau_s));
    EXPECT_THROW(velocity_improved_deltas(ds.x, Matrix(3, 25), ds.tau_s),
                 Error);
    EXPECT_THROW(velocity_improved_deltas(ds.x, avg, 0.0), Error);
}

TEST(TraceStats, EnergyFractionBounds) {
    const TraceDataset ds = make_small_dataset(2, 8, 30);
    const SingularEnergyCurve curve = singular_energy_curve(ds.x);
    EXPECT_THROW(energy_fraction_needed(curve, 1.5), Error);
    EXPECT_LE(energy_fraction_needed(curve, 0.0),
              energy_fraction_needed(curve, 1.0));
}

TEST(EstimateVelocity, MatchesConstantMotion) {
    // x(j) = 100 + 9*tau*j -> central differences recover exactly 9 m/s.
    const std::size_t t = 20;
    Matrix x(2, t);
    for (std::size_t j = 0; j < t; ++j) {
        x(0, j) = 100.0 + 9.0 * 30.0 * static_cast<double>(j);
        x(1, j) = 5000.0;  // parked
    }
    const Matrix existence = Matrix::constant(2, t, 1.0);
    const Matrix v = estimate_velocity(x, existence, 30.0);
    for (std::size_t j = 0; j < t; ++j) {
        EXPECT_NEAR(v(0, j), 9.0, 1e-9);
        EXPECT_NEAR(v(1, j), 0.0, 1e-12);
    }
}

TEST(EstimateVelocity, BridgesMissingSlots) {
    const std::size_t t = 10;
    Matrix x(1, t);
    for (std::size_t j = 0; j < t; ++j) {
        x(0, j) = 4.0 * 30.0 * static_cast<double>(j);
    }
    Matrix existence = Matrix::constant(1, t, 1.0);
    existence(0, 4) = 0.0;
    existence(0, 5) = 0.0;
    Matrix masked = x;
    masked(0, 4) = 0.0;
    masked(0, 5) = 0.0;
    const Matrix v = estimate_velocity(masked, existence, 30.0);
    // Observed cells still difference across the gap correctly.
    EXPECT_NEAR(v(0, 3), 4.0, 1e-9);
    EXPECT_NEAR(v(0, 6), 4.0, 1e-9);
    // The missing slots inherit a nearby estimate, not garbage.
    EXPECT_NEAR(v(0, 4), 4.0, 1e-9);
}

TEST(EstimateVelocity, DegenerateRows) {
    Matrix x(2, 5, 7.0);
    Matrix existence(2, 5);
    existence(0, 2) = 1.0;  // a single observation
    const Matrix v = estimate_velocity(x, existence, 30.0);
    for (const double value : v.data()) {
        EXPECT_DOUBLE_EQ(value, 0.0);
    }
    EXPECT_THROW(estimate_velocity(x, Matrix(1, 5), 30.0), Error);
    EXPECT_THROW(estimate_velocity(x, existence, 0.0), Error);
}

TEST(EstimateVelocity, ApproximatesUploadedVelocities) {
    // On a simulated fleet, position-derived velocities track the uploaded
    // ones closely enough to drive the framework (small median error).
    const TraceDataset ds = make_small_dataset(9, 10, 60);
    const Matrix existence = Matrix::constant(10, 60, 1.0);
    const Matrix vx = estimate_velocity(ds.x, existence, ds.tau_s);
    std::vector<double> errors;
    for (std::size_t i = 0; i < 10; ++i) {
        for (std::size_t j = 1; j + 1 < 60; ++j) {
            errors.push_back(std::abs(vx(i, j) - ds.vx(i, j)));
        }
    }
    EXPECT_LT(median(errors), 3.0);  // m/s
}

}  // namespace
}  // namespace mcs
