// Unit tests for the vehicle kinematics and the trip generator.
#include "trace/trip_generator.hpp"
#include "trace/vehicle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace mcs {
namespace {

RoadNetworkConfig grid_config() {
    RoadNetworkConfig config;
    config.width_m = 10000.0;
    config.height_m = 10000.0;
    config.block_m = 1000.0;
    config.arterial_every = 3;
    return config;
}

TEST(Vehicle, StartsIdleAtStartNode) {
    const RoadNetwork net(grid_config());
    const Vehicle v(net, net.node_at(2, 2), VehicleConfig{});
    EXPECT_TRUE(v.needs_trip());
    const VehicleSample s = v.sample();
    EXPECT_DOUBLE_EQ(s.speed_mps, 0.0);
    EXPECT_DOUBLE_EQ(s.position.x_m, 2000.0);
    EXPECT_DOUBLE_EQ(s.position.y_m, 2000.0);
}

TEST(Vehicle, RouteMustStartAtCurrentNode) {
    const RoadNetwork net(grid_config());
    Vehicle v(net, net.node_at(0, 0), VehicleConfig{});
    EXPECT_THROW(
        v.assign_route({net.node_at(1, 0), net.node_at(2, 0)}, 0.0),
        Error);
    EXPECT_THROW(v.assign_route({}, 0.0), Error);
}

TEST(Vehicle, DrivesAlongRouteAndArrives) {
    const RoadNetwork net(grid_config());
    const Router router(net);
    Vehicle v(net, net.node_at(0, 0), VehicleConfig{});
    const NodeId dest = net.node_at(3, 0);
    v.assign_route(router.route(net.node_at(0, 0), dest), 0.0);
    EXPECT_FALSE(v.needs_trip());
    for (int step = 0; step < 4000 && !v.needs_trip(); ++step) {
        v.step(1.0);
    }
    EXPECT_TRUE(v.needs_trip());
    EXPECT_EQ(v.current_node(), dest);
    const VehicleSample s = v.sample();
    EXPECT_DOUBLE_EQ(s.position.x_m, 3000.0);
}

TEST(Vehicle, RespectsSpeedLimit) {
    const auto config = grid_config();
    const RoadNetwork net(config);
    const Router router(net);
    VehicleConfig vc;
    vc.speed_factor = 1.0;
    Vehicle v(net, net.node_at(0, 1), vc);  // row 1: local road
    // Explicit route pinned to the local-road row (the router would
    // legitimately detour via a faster arterial).
    Route along_row;
    for (std::size_t ix = 0; ix <= 9; ++ix) {
        along_row.push_back(net.node_at(ix, 1));
    }
    v.assign_route(along_row, 0.0);
    double max_speed = 0.0;
    for (int step = 0; step < 600 && !v.needs_trip(); ++step) {
        v.step(1.0);
        max_speed = std::max(max_speed, v.sample().speed_mps);
    }
    EXPECT_LE(max_speed, config.local_speed_mps + 1e-9);
    EXPECT_GT(max_speed, 0.5 * config.local_speed_mps);
}

TEST(Vehicle, AccelerationBounded) {
    const RoadNetwork net(grid_config());
    const Router router(net);
    VehicleConfig vc;
    vc.accel_mps2 = 2.0;
    Vehicle v(net, net.node_at(0, 0), vc);
    v.assign_route(router.route(net.node_at(0, 0), net.node_at(9, 0)), 0.0);
    double previous = 0.0;
    for (int step = 0; step < 60; ++step) {
        v.step(1.0);
        const double speed = v.sample().speed_mps;
        EXPECT_LE(speed - previous, vc.accel_mps2 + 1e-9);
        previous = speed;
    }
}

TEST(Vehicle, DwellsAfterArrival) {
    const RoadNetwork net(grid_config());
    const Router router(net);
    Vehicle v(net, net.node_at(0, 0), VehicleConfig{});
    v.assign_route(router.route(net.node_at(0, 0), net.node_at(1, 0)), 120.0);
    // Drive until arrival (with dwell pending we stay "not needing trip").
    for (int step = 0; step < 600; ++step) {
        v.step(1.0);
    }
    // 1000 m at <= 16.7 m/s arrives within 600 s, then dwells 120 s of
    // which ~ (600 - travel) already elapsed; drive the rest.
    EXPECT_EQ(v.current_node(), net.node_at(1, 0));
    for (int step = 0; step < 121; ++step) {
        v.step(1.0);
    }
    EXPECT_TRUE(v.needs_trip());
}

TEST(Vehicle, VelocityDirectionMatchesMotion) {
    const RoadNetwork net(grid_config());
    const Router router(net);
    Vehicle v(net, net.node_at(0, 0), VehicleConfig{});
    v.assign_route(router.route(net.node_at(0, 0), net.node_at(5, 0)), 0.0);
    for (int step = 0; step < 30; ++step) {
        v.step(1.0);
    }
    const VehicleSample s = v.sample();
    EXPECT_GT(s.vx_mps, 0.0);        // heading east
    EXPECT_NEAR(s.vy_mps, 0.0, 1e-9);
    EXPECT_NEAR(std::hypot(s.vx_mps, s.vy_mps), s.speed_mps, 1e-9);
}

TEST(Vehicle, DisplacementConsistentWithSpeed) {
    // Integrated |velocity|·dt over a drive ≈ distance covered.
    const RoadNetwork net(grid_config());
    const Router router(net);
    Vehicle v(net, net.node_at(0, 0), VehicleConfig{});
    v.assign_route(router.route(net.node_at(0, 0), net.node_at(4, 0)), 0.0);
    LocalPoint last = v.sample().position;
    for (int step = 0; step < 100; ++step) {
        const double speed_before = std::max(v.sample().speed_mps, 0.5);
        v.step(1.0);
        const LocalPoint now = v.sample().position;
        const double moved = Projection::distance_m(last, now);
        // Within one integration step the vehicle cannot outrun its speed
        // by more than the acceleration allows.
        EXPECT_LE(moved, speed_before + 3.0 + 1e-9);
        last = now;
        if (v.needs_trip()) {
            break;
        }
    }
}

TEST(TripGenerator, TripsRespectLengthBounds) {
    const RoadNetwork net(grid_config());
    const Router router(net);
    TripConfig config;
    config.min_trip_m = 2000.0;
    config.max_trip_m = 5000.0;
    TripGenerator gen(net, router, config, Rng(1));
    for (int i = 0; i < 50; ++i) {
        const auto trip = gen.next_trip(net.node_at(5, 5));
        ASSERT_GE(trip.route.size(), 2u);
        EXPECT_EQ(trip.route.front(), net.node_at(5, 5));
        const double distance =
            net.euclidean_m(trip.route.front(), trip.route.back());
        EXPECT_GE(distance, config.min_trip_m - 1e-9);
        EXPECT_GE(trip.dwell_s, 0.0);
    }
}

TEST(TripGenerator, WorksFromGridCorner) {
    // A corner with a ring mostly off-grid must still produce trips.
    const RoadNetwork net(grid_config());
    const Router router(net);
    TripGenerator gen(net, router, TripConfig{}, Rng(2));
    const auto trip = gen.next_trip(net.node_at(0, 0));
    EXPECT_GE(trip.route.size(), 2u);
}

TEST(TripGenerator, RandomNodeInRange) {
    const RoadNetwork net(grid_config());
    const Router router(net);
    TripGenerator gen(net, router, TripConfig{}, Rng(3));
    for (int i = 0; i < 100; ++i) {
        EXPECT_LT(gen.random_node(), net.num_nodes());
    }
}

TEST(TripGenerator, InvalidConfigRejected) {
    const RoadNetwork net(grid_config());
    const Router router(net);
    TripConfig config;
    config.min_trip_m = 5000.0;
    config.max_trip_m = 2000.0;
    EXPECT_THROW(TripGenerator(net, router, config, Rng(4)), Error);
}

}  // namespace
}  // namespace mcs
