// itscs — command-line front end to the I(TS,CS) library.
//
// Subcommands (all I/O is the long-format trace CSV of trace/trace_io.hpp;
// reports are JSON):
//
//   itscs simulate --participants N --slots T [--seed S] [--extent-km W H]
//                  --out trace.csv
//       Generate a synthetic ground-truth fleet.
//
//   itscs corrupt  --in trace.csv --participants N --slots T
//                  [--alpha A] [--beta B] [--gamma G] [--seed S]
//                  [--drift] --out corrupted.csv [--truth-faults faults.csv]
//       Inject missing values and faults; missing readings are dropped
//       from the output file. --truth-faults records the injected fault
//       cells for later scoring.
//
//   itscs clean    --in corrupted.csv --participants N --slots T
//                  [--variant full|no-v|no-vt] [--solver asd|lrsd]
//                  [--estimate-velocity]
//                  [--threads N] [--shard-size K] [--shard-count C]
//                  [--kernel-threads M] [--tier exact|fast]
//                  [--row-block-threshold K]
//                  [--chaos=SPEC] [--adversary=SPEC] [--defense=SPEC]
//                  [--failure-report fr.json]
//                  [--shard-deadline S]
//                  [--checkpoint-dir D] [--resume] [--strict]
//                  --out cleaned.csv [--flags flags.csv]
//                  [--report report.json] [--stats-json]
//       Run the framework: write the reconstructed trace, the flagged
//       cells, and a JSON run report. --stats-json additionally runs the
//       framework instrumented (PipelineContext) and prints its counters
//       and phase timings as JSON on stdout. --threads/--shard-size route
//       the run through the runtime subsystem's FleetRunner (participant
//       shards detected/corrected concurrently; the per-shard contexts
//       are merged so --stats-json stays a single document);
//       --kernel-threads enables row-blocked kernel parallelism instead
//       of (or alongside) sharding. --tier fast switches the GEMM-shaped
//       kernels to the SIMD tier (linalg/kernel_tier.hpp) — deterministic,
//       but not bit-identical to the default exact tier — and
//       --row-block-threshold overrides the minimum destination rows for
//       row-blocked dispatch; both are echoed (with the detected CPU
//       features and per-kernel FLOP totals) in --report and --stats-json.
//       --chaos injects faults per the
//       DESIGN.md §11 spec grammar (nan=p,inf=p,dup=p,diverge=p,throw=p,
//       cells=q,seed=u,crash=k); --adversary injects structured faults per
//       the §16 grammar (collude=k,outage=r,outagespan=w,outagenoise=m,
//       replay=k,replayshift=d,seed=u) fleet-wide before sharding, with
//       the injection's role assignments echoed in --report;
//       --defense arms the §17 defence suite (collusion=r,radius=m,
//       replay=f,replayspan=s,outage=k,outagespan=w,reinstate=r,
//       maxquarantine=q — an empty spec takes every default) fleet-wide
//       before recovery: flagged participants walk the quarantine ladder
//       (quarantine → re-solve without them → re-test → reinstate or
//       confirm) and the decisions are echoed in --report;
//       --failure-report writes the per-shard
//       degradation outcomes (ladder level, attempts, structured
//       failures) as JSON; --shard-deadline sets a per-shard wall-clock
//       budget in seconds. Any of these forces the FleetRunner path.
//
//       --checkpoint-dir journals every completed shard durably
//       (DESIGN.md §12); with --resume, intact journaled shards are
//       restored instead of re-run and the combined output is
//       bit-identical to an uninterrupted run (a mismatched manifest —
//       different input, config or seed — is refused). --strict exits 3
//       when any shard degraded below nominal or any checkpoint frame
//       was corrupt.
//
//   itscs serve    --in corrupted.csv --participants N --slots T
//                  [--window W] [--stride K] [--variant V] [--solver B]
//                  [--threads N] [--shard-size K] [--shard-count C]
//                  [--tier exact|fast] [--chaos=SPEC]
//                  [--journal FILE] [--resume] [--no-warm-start]
//                  [--warm-verify-every K] [--warm-verify-tolerance T]
//                  [--queue-capacity Q] [--report r.json] [--stats-json]
//       Replay the trace through the online ingestion daemon
//       (DESIGN.md §15): slots stream through a bounded queue into a
//       sliding-window detector that evaluates every --stride slots,
//       warm-starting each window's CS solve from the previous window's
//       factors (disable with --no-warm-start; --warm-verify-every k
//       re-checks every k-th warm window against a cold solve). --journal
//       appends every accepted slot to a CRC-framed ingest log; with
//       --resume the journal is replayed first and the trace feed
//       continues after the replayed slots, so a killed serve run picks
//       up exactly where it stopped. --chaos adds slotloss=k to the §11
//       grammar: every k-th upload is lost and an all-missing slot is
//       ingested in its place. Malformed uploads are rejected with
//       structured FailureReports, not crashes.
//
//   itscs demo     [--alpha A] [--beta B] [--seed S] [--json]
//                  [--stats-json] [--solver asd|lrsd]
//       End-to-end in-memory pipeline with ground-truth scoring.
//       --stats-json prints (or, with --json, merges as a "stats" member)
//       the instrumentation counters of the run.
//
//   itscs help     (also --help / -h)
//       Enumerate every subcommand's --key=value flags. Unknown keys on
//       any subcommand error out naming the nearest valid flag.
//
//       --solver picks the CORRECT-step recovery backend (DESIGN.md §14):
//       asd (the paper's Eq. 23 objective, the default) or lrsd (the
//       LS-decomposition of [18], whose sparse component feeds Check()
//       directly). Recorded in checkpoint manifests like the kernel tier,
//       so a --resume never mixes backends.
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime failures,
// 3 when --strict finds degraded shards or corrupt checkpoint frames.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/context.hpp"
#include "common/failure.hpp"
#include "common/format.hpp"
#include "common/json.hpp"
#include "core/itscs.hpp"
#include "core/variants.hpp"
#include "corruption/chaos.hpp"
#include "corruption/scenario.hpp"
#include "eval/methods.hpp"
#include "runtime/fleet_runner.hpp"
#include "serve/daemon.hpp"
#include "linalg/kernel_tier.hpp"
#include "linalg/kernels.hpp"
#include "linalg/ops.hpp"
#include "metrics/confusion.hpp"
#include "metrics/reconstruction_error.hpp"
#include "trace/simulator.hpp"
#include "trace/trace_io.hpp"

namespace {

// The kernel stack as it is configured right now: tier, resolved fast
// path, CPU features, and the active row-block threshold. Attached to both
// --report and --stats-json output so a perf number can always be traced
// back to the code path that produced it.
mcs::Json kernel_info(mcs::KernelTier tier) {
    mcs::Json out = mcs::Json::object();
    out["tier"] = std::string(mcs::to_string(tier));
    out["fast_path"] = std::string(mcs::fast_kernel_path());
    out["row_block_threshold"] = mcs::kernel_row_block_threshold();
    const mcs::CpuFeatures& f = mcs::cpu_features();
    mcs::Json cpu = mcs::Json::object();
    cpu["avx2"] = f.avx2;
    cpu["fma"] = f.fma;
    cpu["avx512f"] = f.avx512f;
    cpu["neon"] = f.neon;
    out["cpu"] = cpu;
    return out;
}

// Role assignments and touched-cell counts of one adversary injection,
// echoed in --report so a detection score can be traced to the attack.
mcs::Json adversary_info(const std::string& spec,
                         const mcs::AdversaryInjection& injection) {
    mcs::Json out = mcs::Json::object();
    out["spec"] = spec;
    out["colluders"] = injection.colluders.size();
    out["replays"] = injection.replays.size();
    out["outage_rows"] = injection.outage_rows;
    out["outage_slots"] = injection.outage_slots;
    out["outage_cells"] = injection.outage_cells;
    out["adversarial_cells"] = mcs::count_equal(injection.mask, 1.0);
    return out;
}

// Outcome of one defence pass (DESIGN.md §17): every flag with its test
// and score, the quarantine ladder's reinstate/confirm split, and the
// classified outage blocks.
mcs::Json defense_info(const std::string& spec,
                       const mcs::DefenseReport& report) {
    mcs::Json out = mcs::Json::object();
    out["spec"] = spec;
    mcs::Json flags = mcs::Json::array();
    for (const mcs::DefenseFlag& flag : report.flags) {
        mcs::Json row = mcs::Json::object();
        row["participant"] = flag.participant;
        row["test"] = std::string(mcs::to_string(flag.test));
        row["score"] = flag.score;
        if (flag.test == mcs::DefenseTest::kReplay) {
            row["partner"] = flag.partner;
            row["shift"] = flag.shift;
        }
        flags.push_back(row);
    }
    out["flags"] = flags;
    const auto indices = [](const std::vector<std::size_t>& rows) {
        mcs::Json list = mcs::Json::array();
        for (const std::size_t r : rows) {
            list.push_back(r);
        }
        return list;
    };
    out["quarantined"] = indices(report.quarantined);
    out["reinstated"] = indices(report.reinstated);
    out["confirmed"] = indices(report.confirmed);
    mcs::Json outages = mcs::Json::array();
    for (const mcs::OutageBlock& block : report.outages) {
        mcs::Json row = mcs::Json::object();
        row["first_row"] = block.first_row;
        row["rows"] = block.rows;
        row["first_slot"] = block.first_slot;
        row["slots"] = block.slots;
        row["dark_cells"] = block.dark_cells;
        outages.push_back(row);
    }
    out["outages"] = outages;
    out["missing_not_faulty_cells"] = report.missing_not_faulty_cells;
    out["trips"] = report.trips;
    return out;
}

// ---- flag registry --------------------------------------------------------
//
// One row per --key the CLI understands, per subcommand. Single source of
// truth for three consumers: `itscs help` (enumerates every flag with its
// description), Args::validate (unknown keys error out with the nearest
// valid name), and the usage sketch.

struct FlagSpec {
    const char* name;   // without the leading --
    const char* value;  // value placeholder, "" for boolean flags
    const char* help;
};

const std::vector<FlagSpec>& known_flags(const std::string& command) {
    static const std::vector<FlagSpec> simulate = {
        {"participants", "N", "fleet size (rows)"},
        {"slots", "T", "time slots (columns)"},
        {"seed", "S", "simulator seed (default 42)"},
        {"extent-km", "E", "square road-network extent in km"},
        {"out", "FILE", "ground-truth trace CSV to write"},
    };
    static const std::vector<FlagSpec> corrupt = {
        {"in", "FILE", "ground-truth trace CSV"},
        {"participants", "N", "fleet size (rows)"},
        {"slots", "T", "time slots (columns)"},
        {"alpha", "A", "missing ratio (default 0.2)"},
        {"beta", "B", "fault ratio (default 0.2)"},
        {"gamma", "G", "velocity-fault ratio (default 0)"},
        {"seed", "S", "corruption seed (default 1)"},
        {"drift", "", "contiguous drift bursts instead of i.i.d. bias"},
        {"adversary", "SPEC", "structured adversary per DESIGN.md §16"},
        {"out", "FILE", "corrupted trace CSV to write"},
        {"truth-faults", "FILE", "CSV of injected fault cells"},
    };
    static const std::vector<FlagSpec> clean = {
        {"in", "FILE", "corrupted trace CSV"},
        {"participants", "N", "fleet size (rows)"},
        {"slots", "T", "time slots (columns)"},
        {"variant", "V", "full | no-v | no-vt (default full)"},
        {"estimate-velocity", "", "derive velocities from positions"},
        {"solver", "B", "recovery backend: asd | lrsd (default asd)"},
        {"threads", "N", "shard worker threads (FleetRunner)"},
        {"shard-size", "K", "participants per shard"},
        {"shard-count", "C", "shard count (when no --shard-size)"},
        {"planner", "P", "shard planner: rows | cell (default rows)"},
        {"kernel-threads", "M", "row-blocked kernel parallelism"},
        {"tier", "T", "kernel tier: exact | fast | mixed (default exact)"},
        {"slab-dir", "DIR", "out-of-core slab store; stream shards via mmap"},
        {"storage", "S", "slab storage tier: f64 | f32 (with --slab-dir)"},
        {"memory-budget", "MB", "resident-window ceiling for --slab-dir"},
        {"row-block-threshold", "K", "min rows for row-blocked dispatch"},
        {"chaos", "SPEC", "fault injection per DESIGN.md §11 grammar"},
        {"adversary", "SPEC", "structured adversary per DESIGN.md §16"},
        {"defense", "SPEC", "defence suite per DESIGN.md §17"},
        {"failure-report", "FILE", "per-shard degradation outcomes JSON"},
        {"shard-deadline", "S", "per-shard wall-clock budget in seconds"},
        {"checkpoint-dir", "DIR", "durable shard journal directory"},
        {"resume", "", "restore intact journaled shards"},
        {"strict", "", "exit 3 on degraded shards / corrupt frames"},
        {"out", "FILE", "cleaned trace CSV to write"},
        {"flags", "FILE", "CSV of flagged (participant, slot) cells"},
        {"report", "FILE", "JSON run report"},
        {"stats-json", "", "print instrumentation counters as JSON"},
    };
    static const std::vector<FlagSpec> serve = {
        {"in", "FILE", "corrupted trace CSV to replay as a stream"},
        {"participants", "N", "fleet size (rows)"},
        {"slots", "T", "time slots (columns)"},
        {"window", "W", "slots per evaluation window (default 60)"},
        {"stride", "K", "slots between evaluations (default 20)"},
        {"variant", "V", "full | no-v | no-vt (default full)"},
        {"solver", "B", "recovery backend: asd | lrsd (default asd)"},
        {"threads", "N", "shard worker threads (FleetRunner)"},
        {"shard-size", "K", "participants per shard"},
        {"shard-count", "C", "shard count (when no --shard-size)"},
        {"tier", "T", "kernel tier: exact | fast (default exact)"},
        {"chaos", "SPEC", "§11 grammar incl. slotloss=k"},
        {"adversary", "SPEC", "§16 adversary applied to the upload stream"},
        {"defense", "SPEC", "§17 defence; quarantined uploads refused"},
        {"journal", "FILE", "CRC-framed ingest journal"},
        {"resume", "", "replay the journal, then continue the feed"},
        {"no-warm-start", "", "cold-start every window's CS solve"},
        {"warm-verify-every", "K", "cold-check every k-th warm window"},
        {"warm-verify-tolerance", "T", "relative gate (default 1e-2)"},
        {"queue-capacity", "Q", "bounded upload queue (default 256)"},
        {"report", "FILE", "JSON run report (per-window rows)"},
        {"stats-json", "", "print instrumentation counters as JSON"},
    };
    static const std::vector<FlagSpec> demo = {
        {"alpha", "A", "missing ratio (default 0.2)"},
        {"beta", "B", "fault ratio (default 0.2)"},
        {"seed", "S", "dataset seed (default 1)"},
        {"solver", "B", "recovery backend: asd | lrsd (default asd)"},
        {"tier", "T", "kernel tier: exact | fast (default exact)"},
        {"json", "", "JSON report instead of prose"},
        {"stats-json", "", "include instrumentation counters"},
    };
    static const std::vector<FlagSpec> none;
    if (command == "simulate") {
        return simulate;
    }
    if (command == "corrupt") {
        return corrupt;
    }
    if (command == "clean") {
        return clean;
    }
    if (command == "serve") {
        return serve;
    }
    if (command == "demo") {
        return demo;
    }
    return none;
}

// ---- tiny flag parser ---------------------------------------------------

class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int k = first; k < argc; ++k) {
            std::string token = argv[k];
            if (token.rfind("--", 0) != 0) {
                throw mcs::Error("unexpected argument: " + token);
            }
            token = token.substr(2);
            // --key=value form (needed for values that contain '=' or ','
            // themselves, like --chaos=nan=0.5,seed=7).
            const std::size_t eq = token.find('=');
            if (eq != std::string::npos) {
                values_[token.substr(0, eq)] = token.substr(eq + 1);
            } else if (k + 1 < argc &&
                       std::string(argv[k + 1]).rfind("--", 0) != 0) {
                values_[token] = argv[++k];
            } else {
                values_[token] = "";  // boolean flag
            }
        }
    }

    /// Reject any parsed key the spec table does not list, suggesting the
    /// nearest valid name when one is plausibly close.
    void validate(const std::vector<FlagSpec>& known) const {
        for (const auto& [key, value] : values_) {
            bool found = false;
            for (const FlagSpec& spec : known) {
                if (key == spec.name) {
                    found = true;
                    break;
                }
            }
            if (found) {
                continue;
            }
            std::vector<std::string> names;
            names.reserve(known.size());
            for (const FlagSpec& spec : known) {
                names.emplace_back(spec.name);
            }
            std::string message = "unknown flag --" + key;
            const std::string nearest = mcs::nearest_candidate(key, names);
            if (!nearest.empty()) {
                message += " (did you mean --" + nearest + "?)";
            } else {
                message += " (see `itscs help`)";
            }
            throw mcs::Error(message);
        }
    }

    bool has(const std::string& name) const {
        return values_.count(name) > 0;
    }
    std::string get(const std::string& name) const {
        const auto it = values_.find(name);
        if (it == values_.end() || it->second.empty()) {
            throw mcs::Error("missing required flag --" + name);
        }
        return it->second;
    }
    std::string get_or(const std::string& name,
                       const std::string& fallback) const {
        const auto it = values_.find(name);
        return it == values_.end() || it->second.empty() ? fallback
                                                         : it->second;
    }
    double number(const std::string& name, double fallback) const {
        return has(name) ? mcs::parse_double(get(name)) : fallback;
    }
    std::size_t count(const std::string& name) const {
        const long v = mcs::parse_long(get(name));
        if (v <= 0) {
            throw mcs::Error("--" + name + " must be positive");
        }
        return static_cast<std::size_t>(v);
    }

private:
    std::map<std::string, std::string> values_;
};

void write_flags_csv(const std::string& path, const mcs::Matrix& detection,
                     const mcs::Matrix& existence) {
    std::ofstream out(path);
    MCS_CHECK_MSG(out.good(), "cannot open flags CSV: " + path);
    out << "participant,slot\n";
    for (std::size_t i = 0; i < detection.rows(); ++i) {
        for (std::size_t j = 0; j < detection.cols(); ++j) {
            if (existence(i, j) == 1.0 && detection(i, j) == 1.0) {
                out << i << ',' << j << '\n';
            }
        }
    }
}

// ---- subcommands ----------------------------------------------------------

int cmd_simulate(const Args& args) {
    mcs::SimulatorConfig config;
    config.participants = args.count("participants");
    config.slots = args.count("slots");
    config.seed =
        static_cast<std::uint64_t>(args.number("seed", 42.0));
    if (args.has("extent-km")) {
        // --extent-km takes "W" (square) via single value for simplicity.
        const double extent = args.number("extent-km", 110.0) * 1000.0;
        config.network.width_m = extent;
        config.network.height_m = extent;
    }
    const mcs::TraceDataset dataset = mcs::simulate_fleet(config);
    mcs::write_trace_csv_file(
        args.get("out"), dataset,
        mcs::Matrix::constant(dataset.participants(), dataset.slots(), 1.0));
    std::cout << "wrote " << dataset.participants() << "x"
              << dataset.slots() << " ground-truth trace to "
              << args.get("out") << "\n";
    return 0;
}

int cmd_corrupt(const Args& args) {
    const std::size_t n = args.count("participants");
    const std::size_t t = args.count("slots");
    const mcs::ImportedTrace imported =
        mcs::read_trace_csv_file(args.get("in"), n, t, 30.0);
    MCS_CHECK_MSG(mcs::count_equal(imported.existence, 1.0) == n * t,
                  "corrupt: input trace must be complete ground truth");

    mcs::CorruptionConfig config;
    config.missing_ratio = args.number("alpha", 0.2);
    config.fault_ratio = args.number("beta", 0.2);
    config.velocity_fault_ratio = args.number("gamma", 0.0);
    config.seed = static_cast<std::uint64_t>(args.number("seed", 1.0));
    if (args.has("drift")) {
        config.fault_model = mcs::FaultModel::kDrift;
    }
    if (args.has("adversary")) {
        config.adversary = mcs::AdversarySpec::parse(args.get("adversary"));
    }
    const mcs::CorruptedDataset corrupted =
        mcs::corrupt(imported.dataset, config);

    mcs::TraceDataset upload{corrupted.sx, corrupted.sy, corrupted.vx,
                             corrupted.vy, corrupted.tau_s};
    mcs::write_trace_csv_file(args.get("out"), upload, corrupted.existence);
    if (args.has("truth-faults")) {
        write_flags_csv(args.get("truth-faults"), corrupted.fault,
                        corrupted.existence);
    }
    std::cout << "wrote corrupted trace ("
              << mcs::format_percent(config.missing_ratio, 0) << " missing, "
              << mcs::format_percent(config.fault_ratio, 0) << " faulty"
              << (args.has("drift") ? ", drift bursts" : "") << ") to "
              << args.get("out") << "\n";
    if (args.has("adversary")) {
        const mcs::AdversaryInjection& adv = corrupted.adversary;
        std::cout << "adversary: " << adv.colluders.size()
                  << " colluder(s), " << adv.replays.size()
                  << " replayed row(s), outage " << adv.outage_rows << "x"
                  << adv.outage_slots << " (" << adv.outage_cells
                  << " cell(s))\n";
    }
    return 0;
}

mcs::ItscsVariant parse_variant(const std::string& name) {
    if (name == "full") {
        return mcs::ItscsVariant::kFull;
    }
    if (name == "no-v") {
        return mcs::ItscsVariant::kWithoutV;
    }
    if (name == "no-vt") {
        return mcs::ItscsVariant::kWithoutVT;
    }
    throw mcs::Error("unknown variant '" + name +
                     "' (expected full | no-v | no-vt)");
}

int cmd_clean(const Args& args) {
    const std::size_t n = args.count("participants");
    const std::size_t t = args.count("slots");
    const mcs::ImportedTrace imported =
        mcs::read_trace_csv_file(args.get("in"), n, t, 30.0);

    mcs::ItscsInput input{imported.dataset.x, imported.dataset.y,
                          imported.dataset.vx, imported.dataset.vy,
                          imported.existence, imported.dataset.tau_s};
    if (args.has("estimate-velocity")) {
        // 25 m/s (90 km/h) cap: prevents faulty positions from injecting
        // km-scale velocity estimates.
        input.vx = mcs::estimate_velocity(imported.dataset.x,
                                          imported.existence, 30.0, 25.0);
        input.vy = mcs::estimate_velocity(imported.dataset.y,
                                          imported.existence, 30.0, 25.0);
    }
    mcs::ItscsConfig config =
        mcs::make_config(parse_variant(args.get_or("variant", "full")));
    const mcs::SolverKind solver =
        mcs::parse_solver_kind(args.get_or("solver", "asd"));
    config.cs.solver = solver;
    mcs::PipelineContext ctx;
    const bool want_stats = args.has("stats-json");

    // Runtime knobs: any of them routes the run through FleetRunner.
    const std::size_t threads =
        args.has("threads") ? args.count("threads") : 1;
    const std::size_t shard_size =
        args.has("shard-size") ? args.count("shard-size") : 0;
    const std::size_t shard_count =
        args.has("shard-count") ? args.count("shard-count") : 0;
    const std::size_t kernel_threads =
        args.has("kernel-threads") ? args.count("kernel-threads") : 1;
    const mcs::KernelTier tier =
        mcs::parse_kernel_tier(args.get_or("tier", "exact"));
    const std::size_t row_block_threshold =
        args.has("row-block-threshold") ? args.count("row-block-threshold")
                                        : 0;
    // Ambient tier + threshold for the whole command: covers the
    // single-run path directly; FleetRunner re-installs the same values
    // per shard from its RuntimeConfig.
    mcs::KernelTierScope tier_scope(tier);
    if (row_block_threshold != 0) {
        mcs::set_kernel_row_block_threshold(row_block_threshold);
    }
    std::optional<mcs::ChaosConfig> chaos_config;
    if (args.has("chaos")) {
        chaos_config = mcs::ChaosConfig::parse(args.get("chaos"));
    }
    std::optional<mcs::AdversarySpec> adversary_spec;
    if (args.has("adversary")) {
        adversary_spec = mcs::AdversarySpec::parse(args.get("adversary"));
    }
    std::optional<mcs::DefenseSpec> defense_spec;
    if (args.has("defense")) {
        defense_spec = mcs::DefenseSpec::parse(args.get_or("defense", ""));
    }
    const double shard_deadline = args.number("shard-deadline", 0.0);
    const mcs::PlannerMode planner =
        mcs::parse_planner_mode(args.get_or("planner", "rows"));
    const mcs::StorageTier storage =
        mcs::parse_storage_tier(args.get_or("storage", "f64"));
    const std::string slab_dir = args.get_or("slab-dir", "");
    const std::size_t memory_budget =
        args.has("memory-budget") ? args.count("memory-budget") : 0;
    const bool use_runner = threads > 1 || shard_size > 0 ||
                            shard_count > 0 || kernel_threads > 1 ||
                            chaos_config.has_value() ||
                            adversary_spec.has_value() ||
                            defense_spec.has_value() ||
                            shard_deadline > 0.0 ||
                            args.has("failure-report") ||
                            args.has("checkpoint-dir") ||
                            args.has("strict") ||
                            planner != mcs::PlannerMode::kRows ||
                            !slab_dir.empty() ||
                            storage != mcs::StorageTier::kF64 ||
                            memory_budget > 0;

    mcs::ItscsResult result;
    std::vector<mcs::ShardRunReport> shard_reports;
    mcs::CheckpointSummary checkpoint;
    mcs::AdversaryInjection adversary_result;
    mcs::DefenseReport defense_result;
    std::size_t resolved_shard_count = 1;
    std::size_t plan_cells = 0;
    std::size_t plan_window_bytes = 0;
    mcs::StealStats steal_stats;
    if (use_runner) {
        mcs::RuntimeConfig runtime;
        runtime.threads = threads;
        runtime.shard_size = shard_size;
        // Without --shard-size/--shard-count, pin the decomposition to the
        // thread count so the flags alone reproduce the numerics on any
        // machine (and FleetRunner's machine-default warning stays quiet).
        runtime.shard_count =
            shard_count > 0 ? shard_count
                            : (shard_size == 0 ? threads : 0);
        runtime.planner = planner;
        runtime.kernel_threads = kernel_threads;
        runtime.kernel_tier = tier;
        runtime.solver = solver;
        runtime.storage = storage;
        runtime.memory_budget_mb = memory_budget;
        runtime.kernel_row_block_threshold = row_block_threshold;
        runtime.health.deadline_seconds = shard_deadline;
        runtime.checkpoint_dir = args.get_or("checkpoint-dir", "");
        runtime.resume = args.has("resume");
        std::unique_ptr<mcs::ChaosInjector> injector;
        if (chaos_config.has_value()) {
            injector = std::make_unique<mcs::ChaosInjector>(*chaos_config);
            runtime.chaos = injector.get();
        }
        std::unique_ptr<mcs::AdversaryInjector> adversary;
        if (adversary_spec.has_value()) {
            adversary =
                std::make_unique<mcs::AdversaryInjector>(*adversary_spec);
            runtime.adversary = adversary.get();
        }
        std::unique_ptr<mcs::DefenseSuite> defense;
        if (defense_spec.has_value()) {
            defense = std::make_unique<mcs::DefenseSuite>(*defense_spec);
            runtime.defense = defense.get();
        }
        mcs::FleetRunner runner(runtime);
        mcs::FleetResult fleet;
        if (!slab_dir.empty()) {
            // --resume re-opens the store the interrupted run laid out
            // (so torn slabs re-run); otherwise lay it out fresh from the
            // imported fleet.
            std::unique_ptr<mcs::SlabStore> store;
            if (runtime.resume &&
                std::filesystem::exists(slab_dir + "/slabs.meta")) {
                store = std::make_unique<mcs::SlabStore>(slab_dir);
            } else {
                store = runner.create_slab_store(slab_dir, input);
            }
            plan_window_bytes =
                runner.resident_window_bytes(store->geometry());
            fleet = runner.run_streamed(*store, config,
                                        want_stats ? &ctx : nullptr);
            // The CLI's CSV/metrics outputs are fleet-shaped, so
            // materialise the aggregate from the output slabs here — the
            // scale harness, not the CLI, is the keep-it-on-disk path.
            fleet.aggregate.detection = mcs::Matrix(n, t);
            fleet.aggregate.reconstructed_x = mcs::Matrix(n, t);
            fleet.aggregate.reconstructed_y = mcs::Matrix(n, t);
            const auto& infos = store->shards();
            for (std::size_t s = 0; s < infos.size(); ++s) {
                const std::size_t rows = infos[s].size();
                mcs::Matrix det(rows, t);
                mcs::Matrix rx(rows, t);
                mcs::Matrix ry(rows, t);
                double* mats[mcs::kSlabOutputMatrices] = {
                    det.data().data(), rx.data().data(), ry.data().data()};
                store->read_outputs(s, mats);
                for (std::size_t k = 0; k < rows; ++k) {
                    const std::size_t row =
                        infos[s].rows.empty()
                            ? static_cast<std::size_t>(infos[s].begin) + k
                            : infos[s].rows[k];
                    for (std::size_t j = 0; j < t; ++j) {
                        fleet.aggregate.detection(row, j) = det(k, j);
                        fleet.aggregate.reconstructed_x(row, j) = rx(k, j);
                        fleet.aggregate.reconstructed_y(row, j) = ry(k, j);
                    }
                }
            }
        } else {
            fleet = runner.run(input, config, want_stats ? &ctx : nullptr);
        }
        plan_cells = runner.plan_for(input).cells();
        steal_stats = fleet.steals;
        result = std::move(fleet.aggregate);
        shard_reports = std::move(fleet.shards);
        checkpoint = std::move(fleet.checkpoint);
        adversary_result = std::move(fleet.adversary);
        defense_result = std::move(fleet.defense);
        resolved_shard_count = shard_reports.size();
    } else {
        result = mcs::run_itscs(input, config, {},
                                want_stats ? &ctx : nullptr);
    }

    mcs::TraceDataset cleaned{result.reconstructed_x, result.reconstructed_y,
                              input.vx, input.vy, input.tau_s};
    mcs::write_trace_csv_file(args.get("out"), cleaned,
                              mcs::Matrix::constant(n, t, 1.0));
    if (args.has("flags")) {
        write_flags_csv(args.get("flags"), result.detection,
                        imported.existence);
    }
    std::size_t flagged = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
            if (imported.existence(i, j) == 1.0 &&
                result.detection(i, j) == 1.0) {
                ++flagged;
            }
        }
    }
    if (args.has("report")) {
        mcs::Json report = mcs::Json::object();
        report["input"] = args.get("in");
        report["participants"] = n;
        report["slots"] = t;
        report["variant"] = args.get_or("variant", "full");
        report["solver"] = std::string(mcs::to_string(solver));
        report["iterations"] = result.iterations;
        report["converged"] = result.converged;
        report["flagged_readings"] = flagged;
        mcs::Json history = mcs::Json::array();
        for (const auto& h : result.history) {
            mcs::Json row = mcs::Json::object();
            row["iteration"] = h.iteration;
            row["flagged"] = h.flagged;
            row["detection_changes"] = h.detection_changes;
            history.push_back(row);
        }
        report["history"] = history;
        report["kernel"] = kernel_info(tier);
        if (adversary_spec.has_value()) {
            report["adversary"] =
                adversary_info(args.get("adversary"), adversary_result);
        }
        if (defense_spec.has_value()) {
            report["defense"] =
                defense_info(args.get_or("defense", ""), defense_result);
        }
        if (use_runner) {
            // The plan line: how the fleet was decomposed and how much of
            // it is ever resident, so degraded locality (row-planned
            // geographic data, a window close to the in-core footprint)
            // is visible at a glance.
            mcs::Json plan_line = mcs::Json::object();
            plan_line["planner"] = std::string(mcs::to_string(planner));
            plan_line["shards"] = resolved_shard_count;
            plan_line["cells"] = plan_cells;
            plan_line["mode"] =
                slab_dir.empty() ? "in-core" : "streamed";
            const std::size_t in_core_bytes =
                n * t * sizeof(double) *
                (mcs::kSlabInputMatrices + mcs::kSlabOutputMatrices);
            plan_line["in_core_bytes"] = in_core_bytes;
            plan_line["resident_window_bytes"] =
                slab_dir.empty() ? in_core_bytes : plan_window_bytes;
            if (!slab_dir.empty()) {
                plan_line["slab_dir"] = slab_dir;
                plan_line["storage"] =
                    std::string(mcs::to_string(storage));
                plan_line["memory_budget_mb"] = memory_budget;
            }
            report["plan"] = plan_line;
            mcs::Json runtime = mcs::Json::object();
            runtime["threads"] = threads;
            runtime["kernel_threads"] = kernel_threads;
            runtime["kernel_tier"] = std::string(mcs::to_string(tier));
            runtime["solver"] = std::string(mcs::to_string(solver));
            runtime["row_block_threshold"] =
                mcs::kernel_row_block_threshold();
            // The *resolved* decomposition, so a report from a run that
            // leaned on machine defaults still states what actually ran.
            runtime["shard_size"] = shard_size;
            runtime["shard_count"] = resolved_shard_count;
            runtime["shards_stolen"] = steal_stats.stolen_items;
            if (checkpoint.enabled) {
                mcs::Json cp = mcs::Json::object();
                cp["dir"] = args.get("checkpoint-dir");
                cp["resume"] = args.has("resume");
                cp["shards_loaded"] = checkpoint.shards_loaded;
                cp["shards_run"] = checkpoint.shards_run;
                cp["corrupt_frames"] = checkpoint.corrupt_frames;
                cp["torn_tail"] = checkpoint.torn_tail;
                mcs::Json journal_failures = mcs::Json::array();
                for (const mcs::FailureReport& failure :
                     checkpoint.journal_failures) {
                    journal_failures.push_back(failure.to_json());
                }
                cp["journal_failures"] = journal_failures;
                runtime["checkpoint"] = cp;
            }
            mcs::Json shards = mcs::Json::array();
            for (const auto& s : shard_reports) {
                mcs::Json row = mcs::Json::object();
                row["begin"] = s.shard.begin;
                row["end"] = s.shard.end;
                row["iterations"] = s.iterations;
                row["converged"] = s.converged;
                row["level"] = mcs::to_string(s.level);
                row["attempts"] = s.attempts;
                shards.push_back(row);
            }
            runtime["shards"] = shards;
            report["runtime"] = runtime;
        }
        if (want_stats) {
            report["stats"] = ctx.to_json();
        }
        mcs::write_json_file(args.get("report"), report);
    }
    if (args.has("failure-report")) {
        mcs::Json fr = mcs::Json::object();
        fr["shards"] = shard_reports.size();
        if (chaos_config.has_value()) {
            fr["chaos"] = args.get("chaos");
        }
        std::size_t by_level[4] = {0, 0, 0, 0};
        mcs::Json per_shard = mcs::Json::array();
        for (const auto& s : shard_reports) {
            by_level[static_cast<std::size_t>(s.level)] += 1;
            mcs::Json row = mcs::Json::object();
            row["shard"] = s.shard.index;
            row["begin"] = s.shard.begin;
            row["end"] = s.shard.end;
            row["level"] = mcs::to_string(s.level);
            row["attempts"] = s.attempts;
            row["converged"] = s.converged;
            mcs::Json failures = mcs::Json::array();
            for (const mcs::FailureReport& failure : s.failures) {
                failures.push_back(failure.to_json());
            }
            row["failures"] = failures;
            per_shard.push_back(row);
        }
        mcs::Json outcomes = mcs::Json::object();
        outcomes["nominal"] = by_level[0];
        outcomes["conservative"] = by_level[1];
        outcomes["interpolation"] = by_level[2];
        outcomes["detect_only"] = by_level[3];
        fr["outcomes"] = outcomes;
        fr["per_shard"] = per_shard;
        mcs::write_json_file(args.get("failure-report"), fr);
    }
    if (want_stats) {
        mcs::Json stats = ctx.to_json();
        stats["kernel"] = kernel_info(tier);
        std::cout << stats.dump(2) << "\n";
    }
    if (checkpoint.enabled) {
        std::cout << "checkpoint: " << checkpoint.shards_loaded
                  << " shard(s) restored, " << checkpoint.shards_run
                  << " run, " << checkpoint.corrupt_frames
                  << " corrupt frame(s)"
                  << (checkpoint.torn_tail ? ", torn tail" : "") << "\n";
    }
    if (defense_spec.has_value()) {
        std::cout << "defense: " << defense_result.quarantined.size()
                  << " quarantined (" << defense_result.reinstated.size()
                  << " reinstated, " << defense_result.confirmed.size()
                  << " confirmed), " << defense_result.outages.size()
                  << " outage block(s)\n";
    }
    std::cout << "cleaned trace written to " << args.get("out") << " ("
              << flagged << " readings flagged, " << result.iterations
              << " iterations)\n";
    if (args.has("strict")) {
        std::size_t degraded = 0;
        for (const auto& s : shard_reports) {
            if (s.level != mcs::DegradationLevel::kNominal) {
                ++degraded;
            }
        }
        if (degraded > 0 || checkpoint.corrupt_frames > 0) {
            std::cerr << "itscs clean: strict: " << degraded
                      << " degraded shard(s), " << checkpoint.corrupt_frames
                      << " corrupt checkpoint frame(s)\n";
            return 3;
        }
    }
    return 0;
}

// Percentile over a copy (nearest-rank on the sorted sample); 0 when the
// sample is empty so a replay with zero live slots still reports cleanly.
double percentile_ms(std::vector<double> sample, double p) {
    if (sample.empty()) {
        return 0.0;
    }
    std::sort(sample.begin(), sample.end());
    const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
    return sample[static_cast<std::size_t>(rank + 0.5)];
}

int cmd_serve(const Args& args) {
    const std::size_t n = args.count("participants");
    const std::size_t t = args.count("slots");
    const mcs::ImportedTrace imported =
        mcs::read_trace_csv_file(args.get("in"), n, t, 30.0);

    // Structured adversary (§16), applied on the *client* side of the
    // daemon: colluded, replayed and degraded rows arrive through the
    // ingest path as individually valid-looking uploads, so boundary
    // validation cannot reject them — only the detector can.
    mcs::Matrix stream_x = imported.dataset.x;
    mcs::Matrix stream_y = imported.dataset.y;
    mcs::Matrix stream_vx = imported.dataset.vx;
    mcs::Matrix stream_vy = imported.dataset.vy;
    mcs::Matrix stream_existence = imported.existence;
    mcs::AdversaryInjection adversary_result;
    if (args.has("adversary")) {
        const mcs::AdversaryInjector adversary(
            mcs::AdversarySpec::parse(args.get("adversary")));
        adversary_result = adversary.apply(stream_x, stream_y, stream_vx,
                                           stream_vy, stream_existence,
                                           imported.dataset.tau_s);
    }

    mcs::ServeConfig serve;
    serve.participants = n;
    serve.tau_s = imported.dataset.tau_s;
    serve.window = args.has("window") ? args.count("window") : 60;
    serve.stride = args.has("stride") ? args.count("stride") : 20;
    serve.framework =
        mcs::make_config(parse_variant(args.get_or("variant", "full")));
    const mcs::SolverKind solver =
        mcs::parse_solver_kind(args.get_or("solver", "asd"));
    serve.framework.cs.solver = solver;

    const std::size_t threads =
        args.has("threads") ? args.count("threads") : 1;
    const std::size_t shard_size =
        args.has("shard-size") ? args.count("shard-size") : 0;
    const std::size_t shard_count =
        args.has("shard-count") ? args.count("shard-count") : 0;
    const mcs::KernelTier tier =
        mcs::parse_kernel_tier(args.get_or("tier", "exact"));
    mcs::KernelTierScope tier_scope(tier);
    serve.runtime.threads = threads;
    serve.runtime.shard_size = shard_size;
    serve.runtime.shard_count =
        shard_count > 0 ? shard_count : (shard_size == 0 ? threads : 0);
    serve.runtime.kernel_tier = tier;
    serve.runtime.solver = solver;
    std::unique_ptr<mcs::ChaosInjector> injector;
    if (args.has("chaos")) {
        injector = std::make_unique<mcs::ChaosInjector>(
            mcs::ChaosConfig::parse(args.get("chaos")));
        serve.runtime.chaos = injector.get();
    }
    // Defence (§17): the suite rides the daemon's per-window fleet runs;
    // confirmed participants enter the daemon's sticky quarantine and
    // their later uploads are refused at the ingest boundary.
    std::unique_ptr<mcs::DefenseSuite> defense;
    if (args.has("defense")) {
        defense = std::make_unique<mcs::DefenseSuite>(
            mcs::DefenseSpec::parse(args.get_or("defense", "")));
        serve.runtime.defense = defense.get();
    }
    serve.journal_path = args.get_or("journal", "");
    serve.resume = args.has("resume");
    serve.warm_start = !args.has("no-warm-start");
    serve.warm_verify_every = args.has("warm-verify-every")
                                  ? args.count("warm-verify-every")
                                  : 0;
    serve.warm_verify_tolerance =
        args.number("warm-verify-tolerance", 1e-2);
    serve.queue_capacity = args.has("queue-capacity")
                               ? args.count("queue-capacity")
                               : 256;

    mcs::IngestDaemon daemon(serve);
    daemon.start();
    // With --resume the journal already re-ingested a prefix of this
    // stream; the feed continues after it, so an interrupted serve run
    // plus this one sees each slot exactly once.
    const std::size_t skip = daemon.stats().slots_replayed;
    for (std::size_t j = skip; j < t; ++j) {
        mcs::SlotUpload upload;
        upload.x.resize(n);
        upload.y.resize(n);
        upload.vx.resize(n);
        upload.vy.resize(n);
        upload.observed.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            upload.x[i] = stream_x(i, j);
            upload.y[i] = stream_y(i, j);
            upload.vx[i] = stream_vx(i, j);
            upload.vy[i] = stream_vy(i, j);
            upload.observed[i] = stream_existence(i, j) == 1.0 ? 1 : 0;
        }
        daemon.submit(std::move(upload));
    }
    daemon.finish();

    const std::vector<mcs::WindowReport> reports = daemon.drain();
    const std::vector<mcs::FailureReport> failures =
        daemon.drain_failures();
    const mcs::ServeStats stats = daemon.stats();

    if (args.has("report")) {
        mcs::Json report = mcs::Json::object();
        report["input"] = args.get("in");
        report["participants"] = n;
        report["slots"] = t;
        report["window"] = serve.window;
        report["stride"] = serve.stride;
        report["solver"] = std::string(mcs::to_string(solver));
        report["warm_start"] = serve.warm_start;
        report["threads"] = threads;
        report["uploads_accepted"] = stats.uploads_accepted;
        report["uploads_rejected"] = stats.uploads_rejected;
        report["slots_dropped"] = stats.slots_dropped;
        report["slots_replayed"] = stats.slots_replayed;
        report["windows_evaluated"] = stats.windows_evaluated;
        report["windows_warm"] = stats.windows_warm;
        report["warm_resets"] = stats.warm_resets;
        report["journal_corrupt_frames"] = stats.journal_corrupt_frames;
        report["journal_torn_tail"] = stats.journal_torn_tail;
        report["participants_quarantined"] = stats.participants_quarantined;
        report["readings_quarantined"] = stats.readings_quarantined;
        report["slot_latency_p50_ms"] =
            percentile_ms(stats.slot_latency_ms, 50.0);
        report["slot_latency_p99_ms"] =
            percentile_ms(stats.slot_latency_ms, 99.0);
        mcs::Json windows = mcs::Json::array();
        for (const mcs::WindowReport& w : reports) {
            mcs::Json row = mcs::Json::object();
            row["first_slot"] = w.first_slot;
            row["width"] = w.detection.cols();
            row["iterations"] = w.iterations;
            row["converged"] = w.converged;
            row["warm_started"] = w.warm_started;
            row["warm_verified"] = w.warm_verified;
            row["warm_reset"] = w.warm_reset;
            row["warm_deviation"] = w.warm_deviation;
            row["flagged"] = mcs::count_equal(w.detection, 1.0);
            row["quarantined"] = w.quarantined.size();
            windows.push_back(row);
        }
        report["windows"] = windows;
        mcs::Json failure_rows = mcs::Json::array();
        for (const mcs::FailureReport& failure : failures) {
            failure_rows.push_back(failure.to_json());
        }
        report["failures"] = failure_rows;
        if (args.has("adversary")) {
            report["adversary"] =
                adversary_info(args.get("adversary"), adversary_result);
        }
        if (args.has("defense")) {
            mcs::Json quarantined = mcs::Json::array();
            for (const std::size_t q : daemon.quarantined()) {
                quarantined.push_back(q);
            }
            mcs::Json d = mcs::Json::object();
            d["spec"] = args.get_or("defense", "");
            d["quarantined"] = quarantined;
            report["defense"] = d;
        }
        report["kernel"] = kernel_info(tier);
        mcs::write_json_file(args.get("report"), report);
    }
    if (args.has("stats-json")) {
        mcs::Json stats_json = daemon.context().to_json();
        stats_json["kernel"] = kernel_info(tier);
        std::cout << stats_json.dump(2) << "\n";
    }
    std::cout << "served " << stats.uploads_accepted << " slot(s) ("
              << stats.slots_replayed << " replayed, "
              << stats.uploads_rejected << " rejected, "
              << stats.slots_dropped << " lost, "
              << stats.readings_quarantined << " quarantined reading(s) of "
              << stats.participants_quarantined << " participant(s)): "
              << stats.windows_evaluated << " window(s), "
              << stats.windows_warm << " warm, " << stats.warm_resets
              << " reset(s), p99 "
              << mcs::format_fixed(
                     percentile_ms(stats.slot_latency_ms, 99.0), 2)
              << " ms\n";
    return 0;
}

int cmd_demo(const Args& args) {
    const double alpha = args.number("alpha", 0.2);
    const double beta = args.number("beta", 0.2);
    const auto seed =
        static_cast<std::uint64_t>(args.number("seed", 1.0));

    const mcs::TraceDataset truth = mcs::make_small_dataset(seed, 40, 120);
    mcs::CorruptionConfig corruption;
    corruption.missing_ratio = alpha;
    corruption.fault_ratio = beta;
    corruption.seed = seed + 1;
    const mcs::CorruptedDataset data = mcs::corrupt(truth, corruption);
    mcs::PipelineContext ctx;
    const bool want_stats = args.has("stats-json");
    const mcs::KernelTier tier =
        mcs::parse_kernel_tier(args.get_or("tier", "exact"));
    mcs::KernelTierScope tier_scope(tier);
    mcs::ItscsConfig config = mcs::make_config(mcs::ItscsVariant::kFull);
    config.cs.solver = mcs::parse_solver_kind(args.get_or("solver", "asd"));
    const mcs::ItscsResult result = mcs::run_itscs(
        mcs::to_itscs_input(data), config, {}, want_stats ? &ctx : nullptr);
    const mcs::ConfusionCounts counts = mcs::evaluate_detection(
        result.detection, data.fault, data.existence);
    const double mae = mcs::reconstruction_mae(
        truth.x, truth.y, result.reconstructed_x, result.reconstructed_y,
        data.existence, result.detection);

    if (args.has("json")) {
        mcs::Json report = mcs::Json::object();
        report["alpha"] = alpha;
        report["beta"] = beta;
        report["solver"] =
            std::string(mcs::to_string(config.cs.solver));
        report["precision"] = counts.precision();
        report["recall"] = counts.recall();
        report["f1"] = counts.f1();
        report["mae_m"] = mae;
        report["iterations"] = result.iterations;
        if (want_stats) {
            mcs::Json stats = ctx.to_json();
            stats["kernel"] = kernel_info(tier);
            report["stats"] = stats;
        }
        std::cout << report.dump(2) << "\n";
    } else if (want_stats) {
        mcs::Json stats = ctx.to_json();
        stats["kernel"] = kernel_info(tier);
        std::cout << stats.dump(2) << "\n";
    } else {
        std::cout << "demo (alpha=" << mcs::format_percent(alpha, 0)
                  << ", beta=" << mcs::format_percent(beta, 0)
                  << "): precision "
                  << mcs::format_percent(counts.precision()) << ", recall "
                  << mcs::format_percent(counts.recall()) << ", MAE "
                  << mcs::format_fixed(mae, 0) << " m, "
                  << result.iterations << " iterations\n";
    }
    return 0;
}

// `itscs help`: the full flag enumeration, one row per --key, from the
// same registry that validates them.
int cmd_help() {
    std::cout << "usage: itscs <simulate|corrupt|clean|serve|demo|help> "
                 "[--key value | --key=value ...]\n\n";
    const struct {
        const char* name;
        const char* blurb;
    } commands[] = {
        {"simulate", "generate a synthetic ground-truth fleet trace"},
        {"corrupt", "inject missing values and faults into a trace"},
        {"clean", "run the I(TS,CS) framework over a corrupted trace"},
        {"serve", "replay a trace through the online ingestion daemon"},
        {"demo", "end-to-end in-memory pipeline with ground-truth scoring"},
    };
    for (const auto& command : commands) {
        std::cout << command.name << " — " << command.blurb << "\n";
        for (const FlagSpec& spec : known_flags(command.name)) {
            std::string left = std::string("--") + spec.name;
            if (spec.value[0] != '\0') {
                left += "=";
                left += spec.value;
            }
            std::cout << "  " << left
                      << std::string(left.size() < 28 ? 28 - left.size() : 1,
                                     ' ')
                      << spec.help << "\n";
        }
        std::cout << "\n";
    }
    std::cout << "Unknown --keys are rejected with the nearest valid "
                 "name.\nExit status: 0 success, 1 usage, 2 runtime "
                 "failure, 3 --strict violations.\n";
    return 0;
}

int usage() {
    std::cerr
        << "usage: itscs <simulate|corrupt|clean|serve|demo|help> "
           "[--flags...]\n"
           "  simulate --participants N --slots T [--seed S] "
           "[--extent-km E] --out trace.csv\n"
           "  corrupt  --in trace.csv --participants N --slots T "
           "[--alpha A] [--beta B]\n"
           "           [--gamma G] [--seed S] [--drift] [--adversary=SPEC]\n"
           "           --out c.csv [--truth-faults f.csv]\n"
           "  clean    --in c.csv --participants N --slots T "
           "[--variant full|no-v|no-vt]\n"
           "           [--solver asd|lrsd] [--estimate-velocity] "
           "[--threads N]\n"
           "           [--shard-size K] [--shard-count C]\n"
           "           [--kernel-threads M] [--tier exact|fast] "
           "[--row-block-threshold K]\n"
           "           [--chaos=SPEC] [--adversary=SPEC] [--defense=SPEC] "
           "[--failure-report fr.json]\n"
           "           [--shard-deadline S] [--checkpoint-dir D] "
           "[--resume] [--strict]\n"
           "           --out cleaned.csv "
           "[--flags flags.csv] [--report r.json]\n"
           "           [--stats-json]\n"
           "  serve    --in c.csv --participants N --slots T [--window W] "
           "[--stride K]\n"
           "           [--variant V] [--solver asd|lrsd] [--threads N] "
           "[--shard-size K]\n"
           "           [--shard-count C] [--tier exact|fast] "
           "[--chaos=SPEC] [--adversary=SPEC]\n"
           "           [--defense=SPEC] [--journal j.bin] [--resume] "
           "[--no-warm-start]\n"
           "           [--warm-verify-every K] [--warm-verify-tolerance T]\n"
           "           [--queue-capacity Q] [--report r.json] "
           "[--stats-json]\n"
           "  demo     [--alpha A] [--beta B] [--seed S] [--json] "
           "[--stats-json]\n"
           "           [--solver asd|lrsd] [--tier exact|fast]\n"
           "  help     full flag reference (also --help / -h)\n";
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        return usage();
    }
    const std::string command = argv[1];
    if (command == "help" || command == "--help" || command == "-h") {
        return cmd_help();
    }
    try {
        const Args args(argc, argv, 2);
        args.validate(known_flags(command));
        if (command == "simulate") {
            return cmd_simulate(args);
        }
        if (command == "corrupt") {
            return cmd_corrupt(args);
        }
        if (command == "clean") {
            return cmd_clean(args);
        }
        if (command == "serve") {
            return cmd_serve(args);
        }
        if (command == "demo") {
            return cmd_demo(args);
        }
        return usage();
    } catch (const std::exception& error) {
        std::cerr << "itscs " << command << ": " << error.what() << "\n";
        return 2;
    }
}
