#!/usr/bin/env bash
# End-to-end smoke test of the itscs CLI: simulate -> corrupt -> clean,
# through real files, checking outputs exist and the report parses.
set -euo pipefail

ITSCS="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "== simulate =="
"$ITSCS" simulate --participants 20 --slots 60 --seed 3 --extent-km 20 \
    --out "$WORKDIR/truth.csv"
test -s "$WORKDIR/truth.csv"
# header + 20*60 records
LINES=$(wc -l < "$WORKDIR/truth.csv")
test "$LINES" -eq 1201

echo "== corrupt =="
"$ITSCS" corrupt --in "$WORKDIR/truth.csv" --participants 20 --slots 60 \
    --alpha 0.2 --beta 0.2 --seed 7 \
    --out "$WORKDIR/corrupted.csv" --truth-faults "$WORKDIR/faults.csv"
test -s "$WORKDIR/corrupted.csv"
test -s "$WORKDIR/faults.csv"
# 20% missing -> about 960 data rows (+1 header)
CORRUPTED=$(wc -l < "$WORKDIR/corrupted.csv")
test "$CORRUPTED" -eq 961

echo "== clean =="
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --variant full --out "$WORKDIR/cleaned.csv" \
    --flags "$WORKDIR/flags.csv" --report "$WORKDIR/report.json"
test -s "$WORKDIR/cleaned.csv"
test -s "$WORKDIR/flags.csv"
test -s "$WORKDIR/report.json"
# cleaned trace is complete again
CLEANED=$(wc -l < "$WORKDIR/cleaned.csv")
test "$CLEANED" -eq 1201
grep -q '"converged": true' "$WORKDIR/report.json"

echo "== clean with estimated velocity =="
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --estimate-velocity --out "$WORKDIR/cleaned2.csv"
test -s "$WORKDIR/cleaned2.csv"

echo "== demo =="
"$ITSCS" demo --alpha 0.1 --beta 0.1 --json | grep -q '"precision"'

echo "== stats-json =="
# Instrumented clean: the counters block must reach stdout and the report.
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --out "$WORKDIR/cleaned3.csv" --report "$WORKDIR/report3.json" \
    --stats-json > "$WORKDIR/clean_stats.out"
grep -q '"workspace_allocations"' "$WORKDIR/clean_stats.out"
grep -q '"asd_iterations"' "$WORKDIR/clean_stats.out"
grep -q '"workspace_allocations"' "$WORKDIR/report3.json"
# Instrumented demo: --json merges the counters as a "stats" member.
"$ITSCS" demo --alpha 0.1 --beta 0.1 --json --stats-json \
    > "$WORKDIR/demo_stats.out"
grep -q '"stats"' "$WORKDIR/demo_stats.out"
grep -q '"cs_solves"' "$WORKDIR/demo_stats.out"

echo "== sharded clean is bit-identical across thread counts =="
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --threads 1 --shard-size 8 --out "$WORKDIR/cleaned_t1.csv" \
    --report "$WORKDIR/report_t1.json"
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --threads 2 --shard-size 8 --out "$WORKDIR/cleaned_t2.csv" \
    --report "$WORKDIR/report_t2.json"
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --threads 4 --shard-size 8 --out "$WORKDIR/cleaned_t4.csv"
cmp "$WORKDIR/cleaned_t1.csv" "$WORKDIR/cleaned_t2.csv"
cmp "$WORKDIR/cleaned_t1.csv" "$WORKDIR/cleaned_t4.csv"
grep -q '"runtime"' "$WORKDIR/report_t2.json"
grep -q '"shards"' "$WORKDIR/report_t2.json"
grep -q '"level": "nominal"' "$WORKDIR/report_t2.json"

echo "== chaos run degrades but completes, failure report round-trips =="
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --threads 2 --shard-size 8 --chaos=nan=1,seed=5 \
    --out "$WORKDIR/cleaned_chaos.csv" \
    --failure-report "$WORKDIR/failure_report.json"
test -s "$WORKDIR/cleaned_chaos.csv"
test -s "$WORKDIR/failure_report.json"
# Every shard degraded off nominal and each carries a structured failure.
grep -q '"non_finite_input"' "$WORKDIR/failure_report.json"
grep -q '"nominal": 0' "$WORKDIR/failure_report.json"
grep -q '"outcomes"' "$WORKDIR/failure_report.json"
# Per-shard outcomes must sum to the shard count (3 shards of size 8/8/4
# under kSpread become 7/7/6 — count is 3 regardless).
python3 - "$WORKDIR/failure_report.json" <<'EOF'
import json, sys
fr = json.load(open(sys.argv[1]))
total = sum(fr["outcomes"].values())
assert total == fr["shards"] == len(fr["per_shard"]), fr["outcomes"]
for shard in fr["per_shard"]:
    if shard["level"] != "nominal":
        assert shard["failures"], shard
        for failure in shard["failures"]:
            assert failure["kind"] != "none" and failure["phase"], failure
print("failure report OK: outcomes sum to", total)
EOF

echo "== zero-fault chaos spec is bit-identical to no chaos =="
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --threads 2 --shard-size 8 --chaos=seed=5 \
    --out "$WORKDIR/cleaned_nochaos.csv" \
    --failure-report "$WORKDIR/failure_report_clean.json"
cmp "$WORKDIR/cleaned_t1.csv" "$WORKDIR/cleaned_nochaos.csv"
grep -q '"nominal": 3' "$WORKDIR/failure_report_clean.json"

echo "== bad chaos spec is a usage-style failure =="
if "$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 \
    --slots 60 --chaos=bogus=1 --out "$WORKDIR/never.csv" 2>/dev/null; then
    echo "expected chaos spec failure"; exit 1
fi

echo "== lrsd solver backend end to end =="
"$ITSCS" clean --in "$WORKDIR/corrupted.csv" --participants 20 --slots 60 \
    --solver lrsd --threads 2 --shard-size 8 \
    --out "$WORKDIR/cleaned_lrsd.csv" --report "$WORKDIR/report_lrsd.json" \
    --stats-json > "$WORKDIR/lrsd_stats.out"
test -s "$WORKDIR/cleaned_lrsd.csv"
CLEANED_LRSD=$(wc -l < "$WORKDIR/cleaned_lrsd.csv")
test "$CLEANED_LRSD" -eq 1201
grep -q '"solver": "lrsd"' "$WORKDIR/report_lrsd.json"
grep -q '"solver_backend": "lrsd"' "$WORKDIR/lrsd_stats.out"
python3 - "$WORKDIR/lrsd_stats.out" <<'EOF'
import json, sys
# The stats JSON is followed by the one-line human summary.
stats, _ = json.JSONDecoder().raw_decode(open(sys.argv[1]).read())
counters = stats["counters"]
assert counters["solves_lrsd"] > 0 and counters["solves_asd"] == 0, counters
assert counters["lrsd_rounds"] > 0, counters
print("lrsd counters OK:", counters["solves_lrsd"], "solves,",
      counters["lrsd_rounds"], "rounds")
EOF
# The backend choice changes the numerics: outputs must differ from ASD.
if cmp -s "$WORKDIR/cleaned_t1.csv" "$WORKDIR/cleaned_lrsd.csv"; then
    echo "expected lrsd output to differ from asd"; exit 1
fi

echo "== help enumerates every flag =="
"$ITSCS" help > "$WORKDIR/help.out"
grep -q -- '--solver=B' "$WORKDIR/help.out"
grep -q -- '--chaos=SPEC' "$WORKDIR/help.out"
grep -q -- '--checkpoint-dir=D' "$WORKDIR/help.out"
"$ITSCS" --help > /dev/null

echo "== unknown flag suggests the nearest valid name =="
if "$ITSCS" clean --solvr lrsd --in "$WORKDIR/corrupted.csv" \
    --participants 20 --slots 60 --out "$WORKDIR/never.csv" \
    2> "$WORKDIR/unknown.err"; then
    echo "expected unknown-flag failure"; exit 1
fi
grep -q 'unknown flag --solvr (did you mean --solver?)' "$WORKDIR/unknown.err"

echo "== usage errors =="
if "$ITSCS" frobnicate 2>/dev/null; then
    echo "expected usage failure"; exit 1
fi
if "$ITSCS" clean --in /nonexistent.csv --participants 2 --slots 2 \
    --out /tmp/x.csv 2>/dev/null; then
    echo "expected runtime failure"; exit 1
fi
if "$ITSCS" clean --in /nonexistent.csv --participants 2 --slots 2 \
    --solver simplex --out /tmp/x.csv 2>/dev/null; then
    echo "expected bad solver name failure"; exit 1
fi

echo "CLI pipeline OK"
