#!/usr/bin/env bash
# Crash/resume end-to-end test (DESIGN.md §12): kill a checkpointed clean
# run with a real process abort (--chaos=crash=k), resume it, and require
# the resumed output to be byte-identical (cmp) to an uninterrupted run —
# across thread counts, and after deliberately flipping a bit in the
# journal. Exercises the real crash seam that the in-process
# runtime_checkpoint_test can only simulate by truncating files.
set -euo pipefail

ITSCS="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

N=32
T=48
COMMON=(--in "$WORKDIR/corrupted.csv" --participants "$N" --slots "$T" \
        --shard-size 4)

echo "== prepare input =="
"$ITSCS" simulate --participants "$N" --slots "$T" --seed 11 \
    --out "$WORKDIR/truth.csv" > /dev/null
"$ITSCS" corrupt --in "$WORKDIR/truth.csv" --participants "$N" \
    --slots "$T" --alpha 0.2 --beta 0.2 --seed 4 \
    --out "$WORKDIR/corrupted.csv" > /dev/null

echo "== reference run (uninterrupted) =="
"$ITSCS" clean "${COMMON[@]}" --threads 2 \
    --out "$WORKDIR/ref.csv" --flags "$WORKDIR/ref_flags.csv" > /dev/null

for THREADS in 1 2 7; do
    echo "== crash after 3 commits, resume at $THREADS thread(s) =="
    CK="$WORKDIR/ck_$THREADS"
    rm -rf "$CK"
    # The crash run must die by SIGABRT (exit 134), not finish.
    set +e
    "$ITSCS" clean "${COMMON[@]}" --threads "$THREADS" \
        --checkpoint-dir "$CK" --chaos=crash=3 \
        --out "$WORKDIR/crashed.csv" > /dev/null 2> /dev/null
    STATUS=$?
    set -e
    test "$STATUS" -eq 134 || {
        echo "expected SIGABRT exit 134, got $STATUS" >&2
        exit 1
    }
    test -s "$CK/manifest.json"
    test -s "$CK/journal.bin"

    "$ITSCS" clean "${COMMON[@]}" --threads "$THREADS" \
        --checkpoint-dir "$CK" --resume --strict \
        --out "$WORKDIR/resumed.csv" --flags "$WORKDIR/resumed_flags.csv" \
        --report "$WORKDIR/resumed_report.json" > "$WORKDIR/resume.out"
    grep -q "3 shard(s) restored" "$WORKDIR/resume.out"
    cmp "$WORKDIR/ref.csv" "$WORKDIR/resumed.csv"
    cmp "$WORKDIR/ref_flags.csv" "$WORKDIR/resumed_flags.csv"
    grep -q '"shards_loaded": 3' "$WORKDIR/resumed_report.json"
done

echo "== corrupt frame: detected, reported, recovered =="
CK="$WORKDIR/ck_flip"
rm -rf "$CK"
"$ITSCS" clean "${COMMON[@]}" --threads 2 --checkpoint-dir "$CK" \
    --out "$WORKDIR/full.csv" > /dev/null
# Flip a byte at a fixed offset inside the FIRST frame's payload (headers
# are 16 bytes, frames kilobytes, so offset 200 is payload whatever commit
# order wrote the frame). A fixed payload offset keeps the outcome
# deterministic: exactly one frame fails its CRC and is skipped. Flipping
# a *header* byte instead would corrupt a length field and turn the rest
# of the journal into a torn tail — recovered identically, but reported
# as truncation, not a corrupt frame, which is not what this block
# asserts. XOR with 0xFF so the write always changes the byte.
flip_payload_byte() {
    local file="$1" off=200 byte
    byte=$(dd if="$file" bs=1 skip="$off" count=1 status=none \
        | od -An -tu1 | tr -d ' ')
    printf "$(printf '\\%03o' $((byte ^ 255)))" \
        | dd of="$file" bs=1 seek="$off" count=1 conv=notrunc status=none
}
flip_payload_byte "$CK/journal.bin"

# Non-strict resume: recovers, reports the corruption, output identical.
"$ITSCS" clean "${COMMON[@]}" --threads 2 --checkpoint-dir "$CK" --resume \
    --out "$WORKDIR/flip.csv" --report "$WORKDIR/flip_report.json" \
    > "$WORKDIR/flip.out"
grep -Eq "[1-9][0-9]* corrupt frame" "$WORKDIR/flip.out"
grep -q 'checkpoint_corrupt' "$WORKDIR/flip_report.json"
cmp "$WORKDIR/ref.csv" "$WORKDIR/flip.csv"

echo "== strict mode exits 3 on corruption =="
rm -rf "$CK"
"$ITSCS" clean "${COMMON[@]}" --threads 2 --checkpoint-dir "$CK" \
    --out "$WORKDIR/full.csv" > /dev/null
flip_payload_byte "$CK/journal.bin"
set +e
"$ITSCS" clean "${COMMON[@]}" --threads 2 --checkpoint-dir "$CK" --resume \
    --strict --out "$WORKDIR/strict.csv" > /dev/null 2> /dev/null
STATUS=$?
set -e
test "$STATUS" -eq 3 || {
    echo "expected strict exit 3, got $STATUS" >&2
    exit 1
}
cmp "$WORKDIR/ref.csv" "$WORKDIR/strict.csv"  # output still correct

echo "== resume against different input is refused =="
"$ITSCS" corrupt --in "$WORKDIR/truth.csv" --participants "$N" \
    --slots "$T" --alpha 0.2 --beta 0.2 --seed 5 \
    --out "$WORKDIR/other.csv" > /dev/null
rm -rf "$CK"
"$ITSCS" clean "${COMMON[@]}" --threads 2 --checkpoint-dir "$CK" \
    --out "$WORKDIR/full.csv" > /dev/null
set +e
"$ITSCS" clean --in "$WORKDIR/other.csv" --participants "$N" --slots "$T" \
    --shard-size 4 --threads 2 --checkpoint-dir "$CK" --resume \
    --out "$WORKDIR/refused.csv" > /dev/null 2> "$WORKDIR/refused.err"
STATUS=$?
set -e
test "$STATUS" -eq 2 || {
    echo "expected refusal exit 2, got $STATUS" >&2
    exit 1
}
grep -q "resume refused" "$WORKDIR/refused.err"

echo "crash/resume: all checks passed"
