#!/usr/bin/env bash
# Repo verification driver.
#
#   tools/verify.sh          tier-1: configure + build + full ctest suite
#   tools/verify.sh tsan     concurrency job: rebuild the runtime-facing
#                            tests with -fsanitize=thread (MCS_SANITIZE,
#                            see the `tsan` CMake preset) and run
#                            runtime_test + runtime_chaos_test +
#                            core_streaming_test under TSan
#   tools/verify.sh asan     memory job: same runtime-facing tests plus
#                            core_itscs_test with -fsanitize=address
#                            (the `asan` CMake preset)
#   tools/verify.sh perf     perf smoke: Release-build bench/perf_kernels,
#                            run it in --quick mode against the committed
#                            BENCH_kernels.json baseline, and fail when
#                            any kernel's fast/exact speedup ratio drops
#                            more than 20% below the baseline ratio; then
#                            run the cross-backend shootout (perf_pipeline
#                            --backend-sweep --quick), which exits non-zero
#                            on empty or non-finite results in any
#                            {regime, solver} cell
#   tools/verify.sh adv      adversary smoke: Release-build perf_pipeline
#                            and run the structured-adversary degradation
#                            sweep (--adversary-sweep --quick); the binary
#                            exits non-zero on empty or non-finite cells,
#                            or when the corruption-path and runtime-path
#                            injections disagree, or when the hostile run
#                            is not bit-identical across 1/2/7 workers
#   tools/verify.sh stream   streaming smoke: Release-build the ingestion
#                            daemon's trace-replay load generator
#                            (bench/perf_streaming) and run it in --quick
#                            mode; the binary itself exits non-zero when
#                            the replay is invalid — no windows, empty or
#                            non-finite report cells, warm start not
#                            cheaper than cold, or a warm/cold F1 gap
#                            above 0.01
#   tools/verify.sh defense  defence smoke: Release-build perf_pipeline and
#                            run the defence sweep (--defense-sweep
#                            --quick); the binary exits non-zero on a
#                            non-finite cell, a clean-path deviation (armed
#                            suite on a clean fleet must be bit-identical
#                            to no defence), an analyze() overhead above 2%
#                            of the clean solve, or an unmet k=24
#                            collusion breaking-point claim
#   tools/verify.sh scale    out-of-core smoke: Release-build perf_pipeline
#                            and run the scale sweep (--scale-sweep
#                            --quick) — streamed run under the memory
#                            budget, streamed-vs-in-core and 1/2/7-thread
#                            bit-identity, f32 tier F1 drift ≤ 1e-3 — then
#                            rebuild the work-stealing scheduler tests
#                            (runtime_scale_test) under TSan and run them
#   tools/verify.sh all      everything, tier-1 first
#
# Run from the repository root. Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

tier1() {
    echo "== tier-1: build =="
    cmake --preset default
    cmake --build --preset default -j "$(nproc)"
    echo "== tier-1: ctest =="
    ctest --preset default
}

tsan() {
    echo "== tsan: build (MCS_SANITIZE=thread) =="
    cmake --preset tsan
    # Only the targets the tsan test preset runs; a full instrumented
    # build costs minutes and adds no coverage.
    cmake --build --preset tsan -j "$(nproc)" \
        --target runtime_test runtime_chaos_test core_streaming_test
    echo "== tsan: runtime_test + runtime_chaos_test + core_streaming_test =="
    ctest --preset tsan
}

asan() {
    echo "== asan: build (MCS_SANITIZE=address) =="
    cmake --preset asan
    cmake --build --preset asan -j "$(nproc)" \
        --target runtime_test runtime_chaos_test core_streaming_test \
        core_itscs_test
    echo "== asan: runtime + chaos + streaming + itscs tests =="
    ctest --preset asan
}

perf() {
    echo "== perf: build (Release) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" \
        --target perf_kernels perf_pipeline
    echo "== perf: kernel smoke vs committed baseline =="
    ./build-release/bench/perf_kernels --quick \
        --output BENCH_kernels_smoke.json \
        --baseline BENCH_kernels.json
    rm -f BENCH_kernels_smoke.json
    echo "== perf: backend shootout smoke (asd vs lrsd) =="
    # Writes BENCH_backends.json in cwd; run from a scratch dir so the
    # committed full-sweep baseline isn't clobbered by quick numbers.
    local scratch
    scratch="$(mktemp -d)"
    (cd "$scratch" &&
        "$OLDPWD/build-release/bench/perf_pipeline" --backend-sweep --quick \
            > /dev/null)
    rm -rf "$scratch"
}

adv() {
    echo "== adv: build (Release) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" --target perf_pipeline
    echo "== adv: structured-adversary degradation smoke =="
    # Writes BENCH_adversary.json in cwd; run from a scratch dir so the
    # committed full-sweep baseline isn't clobbered by quick numbers.
    local scratch
    scratch="$(mktemp -d)"
    (cd "$scratch" &&
        "$OLDPWD/build-release/bench/perf_pipeline" --adversary-sweep \
            --quick --repeat 1 > /dev/null)
    rm -rf "$scratch"
}

stream() {
    echo "== stream: build (Release) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" --target perf_streaming
    echo "== stream: daemon trace-replay smoke (warm vs cold) =="
    # Writes BENCH_streaming.json in cwd; run from a scratch dir so the
    # committed full-replay baseline isn't clobbered by quick numbers.
    local scratch
    scratch="$(mktemp -d)"
    (cd "$scratch" &&
        "$OLDPWD/build-release/bench/perf_streaming" --quick --repeat 1 \
            > /dev/null)
    rm -rf "$scratch"
}

defense() {
    echo "== defense: build (Release) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" --target perf_pipeline
    echo "== defense: adversary defence quarantine smoke =="
    # Writes BENCH_defense.json in cwd; run from a scratch dir so the
    # committed full-sweep baseline isn't clobbered by quick numbers.
    local scratch
    scratch="$(mktemp -d)"
    (cd "$scratch" &&
        "$OLDPWD/build-release/bench/perf_pipeline" --defense-sweep \
            --quick --repeat 1 > /dev/null)
    rm -rf "$scratch"
}

scale() {
    echo "== scale: build (Release) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" --target perf_pipeline
    echo "== scale: out-of-core data-plane smoke =="
    # Writes BENCH_scale.json in cwd; run from a scratch dir so the
    # committed full-sweep baseline isn't clobbered by quick numbers.
    local scratch
    scratch="$(mktemp -d)"
    (cd "$scratch" &&
        "$OLDPWD/build-release/bench/perf_pipeline" --scale-sweep --quick \
            > /dev/null)
    rm -rf "$scratch"
    echo "== scale: work-stealing scheduler under TSan =="
    cmake --preset tsan
    cmake --build --preset tsan -j "$(nproc)" --target runtime_scale_test
    (cd build-tsan/tests && ./runtime_scale_test)
}

case "${1:-tier1}" in
    tier1) tier1 ;;
    tsan) tsan ;;
    asan) asan ;;
    perf) perf ;;
    adv) adv ;;
    stream) stream ;;
    defense) defense ;;
    scale) scale ;;
    all) tier1; tsan; asan; perf; adv; stream; defense; scale ;;
    *) echo "usage: tools/verify.sh [tier1|tsan|asan|perf|adv|stream|defense|scale|all]" >&2; exit 2 ;;
esac

echo "verify: OK (${1:-tier1})"
